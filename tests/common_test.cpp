// Unit tests for common/: PRNG, distributions, statistics, histograms,
// time formatting, Result.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/logging.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace ks {
namespace {

TEST(Types, UnitConversions) {
  EXPECT_EQ(millis(1), 1000);
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(micros(7), 7);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(millis(250)), 250.0);
  EXPECT_EQ(seconds_f(0.5), 500000);
}

TEST(Types, FormatTime) {
  EXPECT_EQ(format_time(seconds(1)), "1.000000s");
  EXPECT_EQ(format_time(millis(1500)), "1.500000s");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.19) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.19, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonPositiveMean) {
  Rng rng(14);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, ParetoMinimum) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // Mean of Pareto(x_m, alpha) = alpha*x_m/(alpha-1) for alpha > 1.
  Rng rng(16);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, BoundedParetoCap) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.0, 1.1, 4.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 4.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(18);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng parent(19);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ExponentialDurationIsNonNegative) {
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.exponential_duration(millis(10)), 0);
  }
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0, 100);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeBothEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeDisjointRangesMatchesSinglePass) {
  // Two far-apart clusters stress the parallel-variance combination term.
  RunningStats lo, hi, all;
  for (int i = 0; i < 500; ++i) {
    lo.add(i);
    all.add(i);
  }
  for (int i = 100000; i < 100500; ++i) {
    hi.add(i);
    all.add(i);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), all.count());
  EXPECT_NEAR(lo.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(lo.variance() / all.variance(), 1.0, 1e-12);
  EXPECT_EQ(lo.min(), all.min());
  EXPECT_EQ(lo.max(), all.max());
  EXPECT_DOUBLE_EQ(lo.sum(), all.sum());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

TEST(LatencyHistogram, Empty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.add(millis(5));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_seen(), millis(5));
  EXPECT_LE(h.p50(), millis(6));
  EXPECT_GE(h.p50(), millis(4));
}

TEST(LatencyHistogram, PercentileEmptyAllPoints) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(100), 0);
}

TEST(LatencyHistogram, PercentileExtremesSingleBucket) {
  // All observations land in one bucket: p100 is bounded by the true max,
  // p0 by the smallest bucket bound, and they bracket every percentile.
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.add(millis(5));
  EXPECT_EQ(h.percentile(100), h.max_seen());
  EXPECT_LE(h.percentile(0), h.percentile(50));
  EXPECT_LE(h.percentile(50), h.percentile(100));
  EXPECT_GE(h.percentile(50), millis(4));
  EXPECT_LE(h.percentile(50), millis(6));
}

TEST(LatencyHistogram, PercentileClampsOutOfRangeP) {
  LatencyHistogram h;
  h.add(millis(2));
  h.add(millis(8));
  EXPECT_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(150.0), h.percentile(100.0));
}

TEST(LatencyHistogram, PercentilesMonotone) {
  LatencyHistogram h;
  Rng rng(22);
  for (int i = 0; i < 10000; ++i) {
    h.add(static_cast<Duration>(rng.uniform_int(1, seconds(10))));
  }
  Duration prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const Duration v = h.percentile(p);
    EXPECT_GE(v, prev) << "percentile " << p;
    prev = v;
  }
  EXPECT_LE(h.percentile(100), h.max_seen());
}

TEST(LatencyHistogram, MedianOfUniformApproximate) {
  LatencyHistogram h;
  Rng rng(23);
  for (int i = 0; i < 100000; ++i) {
    h.add(static_cast<Duration>(rng.uniform_int(1, millis(1000))));
  }
  // Geometric buckets: allow ~10% relative error at the median.
  EXPECT_NEAR(static_cast<double>(h.p50()), to_millis(millis(500)) * 1000,
              60000.0);
}

TEST(LatencyHistogram, LargeValuesCovered) {
  LatencyHistogram h;
  h.add(seconds(30));  // Beyond the old 61ms bucket ceiling.
  EXPECT_GE(h.percentile(100), seconds(25));
}

TEST(LatencyHistogram, SummaryMentionsCount) {
  LatencyHistogram h;
  h.add(millis(1));
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(""), LogLevel::kOff);
}

TEST(Logging, ParseLevelsCaseInsensitive) {
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("WARNING"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("eRRoR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("OFF"), LogLevel::kOff);
}

TEST(Logging, UnknownLevelWarnsOnStderrOnce) {
  log_detail::parse_warning_emitted() = false;
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("unknown log level"), std::string::npos);
  EXPECT_NE(first.find("bogus"), std::string::npos);

  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("also-bogus"), LogLevel::kOff);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Logging, TruncatedLineIsMarked) {
  set_log_level(LogLevel::kInfo);
  const Logger log("test");
  const std::string big(1000, 'x');
  testing::internal::CaptureStderr();
  log.info("%s", big.c_str());
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(LogLevel::kOff);
  EXPECT_NE(out.find("...[truncated]"), std::string::npos);
}

TEST(Logging, ShortLineNotMarked) {
  set_log_level(LogLevel::kInfo);
  const Logger log("test");
  testing::internal::CaptureStderr();
  log.info("answer=%d", 42);
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(LogLevel::kOff);
  EXPECT_NE(out.find("answer=42"), std::string::npos);
  EXPECT_EQ(out.find("truncated"), std::string::npos);
}

TEST(Logging, LevelGate) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

enum class TestError { kBoom };

TEST(Result, ValueAndError) {
  Result<int, TestError> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(0), 7);

  Result<int, TestError> err(TestError::kBoom);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), TestError::kBoom);
  EXPECT_EQ(err.value_or(-1), -1);
}

}  // namespace
}  // namespace ks
