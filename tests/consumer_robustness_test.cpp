// Consumer robustness: fetch over lossy links, response-size caps, fetch
// timeouts, and epoch/stale-packet handling at the TCP layer.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "kafka_test_rig.hpp"

namespace ks::kafka {
namespace {

using testutil::Rig;
using testutil::RigConfig;

struct ConsumerRig {
  explicit ConsumerRig(Rig& rig, double loss = 0.0)
      : link(rig.sim, {.bandwidth_bps = 100e6},
             std::make_shared<net::ConstantDelay>(millis(1)),
             loss > 0 ? std::shared_ptr<net::LossModel>(
                            std::make_shared<net::BernoulliLoss>(loss))
                      : std::make_shared<net::NoLoss>(),
             std::make_shared<net::ConstantDelay>(millis(1)),
             std::make_shared<net::NoLoss>(), "cons"),
        conn(rig.sim, {}, link, "cons"),
        consumer(rig.sim, {}, conn.client, 0) {
    rig.broker.attach(conn.server);
  }

  net::DuplexLink link;
  tcp::Pair conn;
  Consumer consumer;
};

TEST(ConsumerRobustness, DrainsOverLossyLink) {
  RigConfig config;
  config.messages = 500;
  Rig rig(config);
  rig.run();
  ASSERT_EQ(rig.log().log_end_offset(), 500);

  ConsumerRig crig(rig, /*loss=*/0.15);
  std::set<Key> keys;
  crig.consumer.on_record = [&](const FetchedRecord& r) {
    keys.insert(r.key);
  };
  bool drained = false;
  crig.consumer.on_drained = [&] { drained = true; };
  crig.consumer.start();
  crig.consumer.drain_until(500);
  rig.sim.run_for(seconds(300));
  EXPECT_TRUE(drained);
  EXPECT_EQ(keys.size(), 500u);
}

TEST(ConsumerRobustness, FetchResponsesRespectByteCap) {
  RigConfig config;
  config.messages = 400;
  config.message_size = 1000;  // 400 KB total >> fetch_max_bytes.
  Rig rig(config);
  rig.run();

  ConsumerRig crig(rig);
  int records = 0;
  crig.consumer.on_record = [&](const FetchedRecord&) { ++records; };
  bool drained = false;
  crig.consumer.on_drained = [&] { drained = true; };
  crig.consumer.start();
  crig.consumer.drain_until(400);
  rig.sim.run_for(seconds(60));
  EXPECT_TRUE(drained);
  EXPECT_EQ(records, 400);
  // The byte cap forces many fetch round trips.
  EXPECT_GE(crig.consumer.stats().fetches, 8u);
}

TEST(ConsumerRobustness, FetchTimeoutRecoversLostResponse) {
  RigConfig config;
  config.messages = 100;
  Rig rig(config);
  rig.run();

  ConsumerRig crig(rig);
  int records = 0;
  crig.consumer.on_record = [&](const FetchedRecord&) { ++records; };
  bool drained = false;
  crig.consumer.on_drained = [&] { drained = true; };
  crig.consumer.start();
  rig.sim.run_for(millis(50));
  // Blackhole the response path for a while: the first fetch's response is
  // lost at the TCP level only if the connection resets; instead blackhole
  // the REQUEST path so the broker never sees the fetch.
  crig.link.a_to_b.set_loss_model(std::make_shared<net::BernoulliLoss>(1.0));
  crig.consumer.drain_until(100);
  rig.sim.run_for(seconds(1));
  crig.link.a_to_b.set_loss_model(std::make_shared<net::NoLoss>());
  rig.sim.run_for(seconds(60));
  EXPECT_TRUE(drained);
  EXPECT_EQ(records, 100);
}

TEST(ConsumerRobustness, PositionAdvancesMonotonically) {
  RigConfig config;
  config.messages = 300;
  Rig rig(config);
  rig.run();

  ConsumerRig crig(rig);
  std::int64_t last = -1;
  crig.consumer.on_record = [&](const FetchedRecord& r) {
    EXPECT_GT(r.offset, last);
    last = r.offset;
  };
  crig.consumer.start();
  crig.consumer.drain_until(300);
  rig.sim.run_for(seconds(60));
  EXPECT_EQ(last, 299);
  EXPECT_EQ(crig.consumer.position(), 300);
}

TEST(TcpEpochs, StalePacketsFromOldEpochIgnored) {
  // After a reconnect, data retained in flight from the previous epoch
  // must not corrupt the new stream. We simulate by delaying the old
  // epoch's packets behind a huge link delay and reconnecting first.
  sim::Simulation sim(5);
  auto slow_delay = std::make_shared<net::ConstantDelay>(seconds(2));
  net::DuplexLink link(sim, {.bandwidth_bps = 100e6}, slow_delay,
                       std::make_shared<net::NoLoss>(),
                       std::make_shared<net::ConstantDelay>(millis(1)),
                       std::make_shared<net::NoLoss>(), "stale");
  tcp::Config tconf;
  tconf.max_consecutive_rtos = 2;
  tconf.rto_max = millis(400);
  tcp::Pair pair(sim, tconf, link, "stale");
  pair.server.listen();
  pair.client.connect();
  sim.run_for(seconds(10));
  ASSERT_TRUE(pair.client.established());
  const auto first_epoch = pair.client.epoch();

  int delivered = 0;
  pair.server.on_message = [&](std::shared_ptr<const void>) { ++delivered; };
  // Data sent now takes 2 s one way; the client RTOs out and resets first.
  pair.client.send(tcp::AppMessage{300, std::make_shared<int>(1)});
  sim.run_for(seconds(1));
  EXPECT_EQ(pair.client.state(), tcp::Endpoint::State::kDead);

  // Reconnect over a fast path.
  link.a_to_b.set_delay_model(std::make_shared<net::ConstantDelay>(millis(1)));
  pair.client.connect();
  sim.run_for(seconds(10));
  ASSERT_TRUE(pair.client.established());
  EXPECT_GT(pair.client.epoch(), first_epoch);

  // New-epoch data flows; the old epoch's stragglers (which arrive ~2 s
  // after being sent) are dropped by the epoch check rather than delivered.
  pair.client.send(tcp::AppMessage{300, std::make_shared<int>(2)});
  sim.run_for(seconds(10));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(pair.server.stats().messages_delivered, 1u);
}

}  // namespace
}  // namespace ks::kafka
