// Determinism regression: the simulation is a pure function of the
// scenario seed. Three fixed seeds x all three delivery-semantics
// presets, each run twice; the exported canonical RunReport JSON (which
// excludes only host wall-clock metrics) must be byte-identical.
#include <gtest/gtest.h>

#include <string>

#include "kpi/online_controller.hpp"
#include "obs/report.hpp"
#include "testbed/experiment.hpp"

namespace ks::testbed {
namespace {

// A deliberately eventful configuration: packet loss, delay, broker
// service regimes, sampler and trace all on, so determinism is checked
// across every subsystem that emits into the report.
Scenario make_scenario(std::uint64_t seed, kafka::DeliverySemantics sem) {
  Scenario sc;
  sc.seed = seed;
  sc.semantics = sem;
  sc.num_messages = 500;
  sc.message_size = 300;
  sc.batch_size = 3;
  sc.message_timeout = millis(1200);
  sc.network_delay = millis(20);
  sc.packet_loss = 0.12;
  sc.broker_regimes = true;
  sc.sample_interval = millis(200);
  sc.trace_sample_every = 10;
  sc.trace_capacity = 8192;
  return sc;
}

TEST(Determinism, SameSeedByteIdenticalCanonicalReport) {
  const std::uint64_t seeds[] = {7, 0x1234, 987654321};
  const kafka::DeliverySemantics presets[] = {
      kafka::DeliverySemantics::kAtMostOnce,
      kafka::DeliverySemantics::kAtLeastOnce,
      kafka::DeliverySemantics::kExactlyOnce,
  };
  for (const auto seed : seeds) {
    for (const auto sem : presets) {
      SCOPED_TRACE(std::string("seed=") + std::to_string(seed) +
                   " semantics=" + kafka::to_string(sem));
      const auto first = run_experiment(make_scenario(seed, sem));
      const auto second = run_experiment(make_scenario(seed, sem));
      const auto json_a = first.report.canonical_json();
      const auto json_b = second.report.canonical_json();
      ASSERT_FALSE(json_a.empty());
      EXPECT_EQ(json_a, json_b);
      // The census (and thus P_l/P_d) must agree too, not just the report.
      EXPECT_EQ(first.census.delivered, second.census.delivered);
      EXPECT_EQ(first.census.duplicated, second.census.duplicated);
      EXPECT_EQ(first.census.lost, second.census.lost);
      EXPECT_EQ(first.events, second.events);
    }
  }
}

// Replication, elections and producer failover run on extra RNG-forked
// links and timer-driven fetch sessions; a replicated run with a leader
// fail-stop mid-stream must replay bit for bit too.
TEST(Determinism, ReplicatedFailoverRunIsByteIdentical) {
  Scenario sc = make_scenario(0x1234, kafka::DeliverySemantics::kExactlyOnce);
  sc.replication_factor = 3;
  sc.min_insync_replicas = 2;
  sc.request_timeout = millis(300);
  sc.retries_override = 50;
  sc.message_timeout = seconds(120);
  FaultAction fail;
  fail.kind = FaultAction::Kind::kBrokerFail;
  fail.broker = 0;
  fail.at = millis(80);
  sc.faults.push_back(fail);
  FaultAction resume = fail;
  resume.kind = FaultAction::Kind::kBrokerResume;
  resume.at = millis(700);
  sc.faults.push_back(resume);

  const auto first = run_experiment(sc);
  const auto second = run_experiment(sc);
  ASSERT_GE(first.leader_elections, 1u);
  EXPECT_EQ(first.acked_lost, 0u);
  EXPECT_EQ(first.report.canonical_json(), second.report.canonical_json());
  // The Perfetto trace export is sim-time-only and must replay bit for bit
  // too (spans + cluster timeline, including the election above).
  EXPECT_EQ(first.report.perfetto_json(), second.report.perfetto_json());
  EXPECT_FALSE(first.report.spans.empty());
  EXPECT_FALSE(first.report.timeline.empty());
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.census.delivered, second.census.delivered);
  EXPECT_EQ(first.leader_elections, second.leader_elections);
  EXPECT_EQ(first.producer_failovers, second.producer_failovers);
}

// The consumer-group stage stacks more RNG consumers on top: partition
// routing, per-member fetch/process timers, coordinator deadlines, a
// rebalance triggered by a member crash/restart and a mid-run GC pause.
// The whole thing — per-partition census, group counters, rebalance
// timeline events — must still be a pure function of the seed.
TEST(Determinism, MultiPartitionGroupRunIsByteIdentical) {
  Scenario sc = make_scenario(0xF00D, kafka::DeliverySemantics::kExactlyOnce);
  sc.num_messages = 260;
  sc.source_mode = SourceMode::kOnDemand;
  sc.message_timeout = seconds(120);
  sc.partitions = 4;
  sc.partitioner = kafka::PartitionerKind::kKeyed;
  sc.group_size = 3;
  sc.group_commit_mode = kafka::CommitMode::kCommitAfterDeliver;
  sc.group_strategy = kafka::AssignmentStrategy::kCooperativeSticky;

  FaultAction crash;
  crash.kind = FaultAction::Kind::kConsumerCrash;
  crash.member = 1;
  crash.at = millis(150);
  sc.faults.push_back(crash);
  FaultAction restart = crash;
  restart.kind = FaultAction::Kind::kConsumerRestart;
  restart.at = millis(900);
  sc.faults.push_back(restart);
  FaultAction pause;
  pause.kind = FaultAction::Kind::kConsumerPause;
  pause.member = 2;
  pause.at = millis(400);
  pause.delay = millis(600);  // Past the session timeout: eviction.
  sc.faults.push_back(pause);

  const auto first = run_experiment(sc);
  const auto second = run_experiment(sc);
  ASSERT_TRUE(first.completed);
  ASSERT_GT(first.group_rebalances, 0u) << "faults caused no rebalance";
  EXPECT_EQ(first.report.canonical_json(), second.report.canonical_json());
  EXPECT_EQ(first.report.perfetto_json(), second.report.perfetto_json());
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.group_unique_delivered, second.group_unique_delivered);
  EXPECT_EQ(first.group_duplicate_deliveries,
            second.group_duplicate_deliveries);
  EXPECT_EQ(first.group_lost, second.group_lost);
  EXPECT_EQ(first.group_rebalances, second.group_rebalances);
  EXPECT_EQ(first.group_evictions, second.group_evictions);
  EXPECT_EQ(first.group_commits, second.group_commits);
  EXPECT_EQ(first.report.group_lost_keys, second.report.group_lost_keys);
  // The rebalance story made it into the canonical export: group timeline
  // events are part of what replays byte-for-byte.
  bool saw_rebalance_event = false;
  for (const auto& e : first.report.timeline) {
    if (e.kind.rfind("group_", 0) == 0) saw_rebalance_event = true;
  }
  EXPECT_TRUE(saw_rebalance_event)
      << "no group_* events in the cluster timeline";
}

// The health section is sim-time-driven and lives inside canonical_json():
// replay byte-identity covers the detector's series, verdicts and alert
// ledger. The monitor must also be passive — toggling it cannot change a
// single message fate or simulated event.
TEST(Determinism, HealthSectionIsCanonicalAndTheMonitorIsPassive) {
  Scenario sc = make_scenario(0xBEA7, kafka::DeliverySemantics::kAtLeastOnce);
  sc.num_messages = 300;
  sc.source_mode = SourceMode::kOnDemand;
  sc.partitions = 2;
  sc.group_size = 2;
  sc.group_commit_mode = kafka::CommitMode::kCommitAfterDeliver;
  // A permanent member crash: frozen commits with growing lag, so the
  // detector has something to say in the canonical export.
  FaultAction crash;
  crash.kind = FaultAction::Kind::kConsumerCrash;
  crash.member = 0;
  crash.at = millis(200);
  sc.faults.push_back(crash);

  const auto first = run_experiment(sc);
  const auto second = run_experiment(sc);
  ASSERT_GT(first.health_ticks, 0u);
  ASSERT_GT(first.health_alerts_opened, 0u)
      << "crash raised no health alert; the canonical comparison would "
         "cover an empty section";
  EXPECT_EQ(first.report.canonical_json(), second.report.canonical_json());
  const auto canonical = first.report.canonical_json();
  EXPECT_NE(canonical.find("\"health\""), std::string::npos);
  EXPECT_NE(canonical.find("lag_stall"), std::string::npos);

  // Passivity: the same run with the monitor off reaches identical
  // message fates (the probe timer adds simulated events, but observes
  // without mutating, so every model outcome is unchanged).
  Scenario off = sc;
  off.health_enabled = false;
  const auto dark = run_experiment(off);
  EXPECT_EQ(dark.health_ticks, 0u);
  EXPECT_EQ(dark.census.delivered, first.census.delivered);
  EXPECT_EQ(dark.group_unique_delivered, first.group_unique_delivered);
  EXPECT_EQ(dark.group_duplicate_deliveries,
            first.group_duplicate_deliveries);
  EXPECT_EQ(dark.group_commits, first.group_commits);
  EXPECT_TRUE(dark.report.health.alerts.empty());
}

TEST(Determinism, CanonicalJsonExcludesOnlyWallClockMetrics) {
  const auto result =
      run_experiment(make_scenario(42, kafka::DeliverySemantics::kAtLeastOnce));
  const auto full = result.report.to_json();
  const auto canonical = result.report.canonical_json();
  // Wall-clock metrics exist in the full export but never in the
  // canonical one (they differ between identical replays by nature).
  EXPECT_NE(full.find("sim_wall"), std::string::npos);
  EXPECT_EQ(canonical.find("sim_wall"), std::string::npos);
  EXPECT_TRUE(obs::is_wall_clock_metric("sim_wall_time_us_total"));
  EXPECT_TRUE(obs::is_wall_clock_metric("sim_wall_us_per_sim_s"));
  EXPECT_FALSE(obs::is_wall_clock_metric("producer_records_acked_total"));
}

// The online controller's decisions are part of the canonical replay:
// same seed, same estimates, same reconfigurations, byte-identical JSON.
// And with the controller off the run must be byte-identical to a plain
// scenario that never heard of the adaptive knobs (strict passivity).
TEST(Determinism, AdaptiveRunIsCanonicalAndControllerOffIsPassive) {
  Scenario sc = make_scenario(0xADA, kafka::DeliverySemantics::kAtLeastOnce);
  sc.packet_loss = 0.25;  // Stormy: the controller should want to move.
  sc.adaptive_enabled = true;
  sc.adaptive_interval = millis(250);
  sc.adaptive_cooldown = seconds(1);
  sc.adaptive_factory = kpi::synthetic_adaptive_factory();

  const auto first = run_experiment(sc);
  const auto second = run_experiment(sc);
  ASSERT_GT(first.adaptive_ticks, 0u);
  EXPECT_EQ(first.adaptive_evaluations,
            first.adaptive_reconfigurations + first.adaptive_suppressed);
  EXPECT_EQ(first.report.canonical_json(), second.report.canonical_json());
  EXPECT_EQ(first.adaptive_reconfigurations, second.adaptive_reconfigurations);
  const auto canonical = first.report.canonical_json();
  EXPECT_NE(canonical.find("\"adaptive_ticks\""), std::string::npos);
  if (first.adaptive_evaluations > 0) {
    // Every evaluated decision lands on the timeline for ks_explain.
    EXPECT_NE(canonical.find("reconfigure"), std::string::npos);
  }

  // Passivity: controller off == a scenario that never set the knobs.
  Scenario off = sc;
  off.adaptive_enabled = false;
  const Scenario plain =
      make_scenario(0xADA, kafka::DeliverySemantics::kAtLeastOnce);
  Scenario plain_stormy = plain;
  plain_stormy.packet_loss = 0.25;
  const auto dark = run_experiment(off);
  const auto baseline = run_experiment(plain_stormy);
  EXPECT_EQ(dark.adaptive_ticks, 0u);
  EXPECT_EQ(dark.adaptive_reconfigurations, 0u);
  EXPECT_EQ(dark.report.canonical_json(), baseline.report.canonical_json());
  EXPECT_EQ(dark.report.canonical_json().find("adaptive"),
            std::string::npos);
}

// The perf section (wall-clock, peak RSS, profiler breakdown) is host
// metadata: always present in the full export, never in the canonical
// one — and arming the profiler must not perturb the simulation at all.
TEST(Determinism, PerfSectionIsHostOnlyAndProfilingIsPassive) {
  Scenario sc = make_scenario(7, kafka::DeliverySemantics::kAtLeastOnce);
  const auto off = run_experiment(sc);
  sc.profiler_enabled = true;
  const auto on = run_experiment(sc);

  EXPECT_NE(off.report.to_json().find("\"perf\""), std::string::npos);
  EXPECT_EQ(off.report.canonical_json().find("\"perf\""), std::string::npos);
  EXPECT_GT(off.report.perf.wall_us, 0u);
  EXPECT_GT(off.report.perf.peak_rss_kb, 0);
  EXPECT_FALSE(off.report.perf.profiled);
  EXPECT_TRUE(off.report.perf.sections.empty());

  EXPECT_TRUE(on.report.perf.profiled);
  ASSERT_FALSE(on.report.perf.sections.empty());
  // The event loop ran under the profiler, so dispatch must have counted.
  bool dispatch_counted = false;
  for (const auto& s : on.report.perf.sections) {
    if (s.name == std::string("sim.event_dispatch") && s.calls > 0) {
      dispatch_counted = true;
    }
  }
  EXPECT_TRUE(dispatch_counted);

  // Profiler on vs off: byte-identical canonical replay.
  EXPECT_EQ(off.report.canonical_json(), on.report.canonical_json());
}

}  // namespace
}  // namespace ks::testbed
