// Property tests for the pure group assignor (GroupCoordinator::
// compute_assignment): over random member/partition counts and random
// (including adversarial) previous assignments, the result is always a
// partition of the partition set — no orphan, no double owner — balanced
// to within one, and the cooperative-sticky variant moves the provably
// minimal number of partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kafka/group.hpp"

namespace ks::kafka {
namespace {

using Assignment = std::map<std::string, std::vector<std::int32_t>>;

std::vector<std::string> make_members(int n) {
  std::vector<std::string> members;
  for (int i = 0; i < n; ++i) {
    members.push_back("member-" + std::to_string(i + 10));  // Sorted.
  }
  return members;
}

std::vector<std::int32_t> make_partitions(int p) {
  std::vector<std::int32_t> partitions;
  for (int i = 0; i < p; ++i) partitions.push_back(i);
  return partitions;
}

/// Partition-of-the-set property: every partition owned exactly once.
void expect_partitions_the_set(const Assignment& assignment,
                               const std::vector<std::string>& members,
                               const std::vector<std::int32_t>& partitions) {
  std::set<std::int32_t> owned;
  std::size_t total = 0;
  for (const auto& m : members) {
    ASSERT_TRUE(assignment.count(m)) << "member missing from assignment";
    for (auto p : assignment.at(m)) {
      EXPECT_TRUE(owned.insert(p).second)
          << "partition " << p << " has two owners";
    }
    total += assignment.at(m).size();
  }
  EXPECT_EQ(assignment.size(), members.size());
  EXPECT_EQ(total, partitions.size()) << "orphaned partitions";
  for (auto p : partitions) {
    EXPECT_TRUE(owned.count(p)) << "partition " << p << " unowned";
  }
}

void expect_balanced(const Assignment& assignment, std::size_t partitions,
                     std::size_t members) {
  const std::size_t lo = partitions / members;
  const std::size_t hi = lo + (partitions % members == 0 ? 0 : 1);
  for (const auto& [id, parts] : assignment) {
    EXPECT_GE(parts.size(), lo) << id;
    EXPECT_LE(parts.size(), hi) << id;
  }
}

/// Random previous assignment, deliberately messy: partitions outside the
/// valid set, the same partition claimed by several members, members that
/// are no longer in the group.
Assignment random_previous(Rng& rng, const std::vector<std::string>& members,
                           int num_partitions) {
  Assignment previous;
  for (const auto& m : members) {
    if (rng.bernoulli(0.3)) continue;  // Fresh member with no history.
    auto& prev = previous[m];
    const int n = static_cast<int>(rng.uniform_int(0, num_partitions + 2));
    for (int i = 0; i < n; ++i) {
      prev.push_back(
          static_cast<std::int32_t>(rng.uniform_int(0, num_partitions + 3)));
    }
  }
  if (rng.bernoulli(0.5)) {
    previous["member-00-departed"] = {0, 1};  // Owner that left the group.
  }
  return previous;
}

TEST(GroupAssignor, EagerAlwaysPartitionsTheSet) {
  Rng rng(0xA551611);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const int p = static_cast<int>(rng.uniform_int(0, 32));
    const auto members = make_members(n);
    const auto partitions = make_partitions(p);
    const auto previous = random_previous(rng, members, p);
    const auto next = GroupCoordinator::compute_assignment(
        AssignmentStrategy::kEager, members, partitions, previous);
    expect_partitions_the_set(next, members, partitions);
    expect_balanced(next, partitions.size(), members.size());
  }
}

TEST(GroupAssignor, StickyAlwaysPartitionsTheSet) {
  Rng rng(0xA551612);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const int p = static_cast<int>(rng.uniform_int(0, 32));
    const auto members = make_members(n);
    const auto partitions = make_partitions(p);
    const auto previous = random_previous(rng, members, p);
    const auto next = GroupCoordinator::compute_assignment(
        AssignmentStrategy::kCooperativeSticky, members, partitions,
        previous);
    expect_partitions_the_set(next, members, partitions);
    expect_balanced(next, partitions.size(), members.size());
  }
}

TEST(GroupAssignor, AssignorIsDeterministic) {
  Rng rng(0xA551613);
  for (int trial = 0; trial < 50; ++trial) {
    const auto members =
        make_members(static_cast<int>(rng.uniform_int(1, 6)));
    const auto partitions =
        make_partitions(static_cast<int>(rng.uniform_int(0, 24)));
    const auto previous =
        random_previous(rng, members, static_cast<int>(partitions.size()));
    for (const auto strategy : {AssignmentStrategy::kEager,
                                AssignmentStrategy::kCooperativeSticky}) {
      const auto a = GroupCoordinator::compute_assignment(
          strategy, members, partitions, previous);
      const auto b = GroupCoordinator::compute_assignment(
          strategy, members, partitions, previous);
      EXPECT_EQ(a, b);
    }
  }
}

/// Partitions moved relative to a well-formed previous assignment: how
/// many ended up owned by someone other than their previous owner
/// (orphans from departed members always count as moved).
std::size_t moved_count(const Assignment& previous, const Assignment& next,
                        std::size_t total_partitions) {
  std::size_t retained = 0;
  for (const auto& [id, parts] : next) {
    const auto it = previous.find(id);
    if (it == previous.end()) continue;
    for (auto p : parts) {
      if (std::find(it->second.begin(), it->second.end(), p) !=
          it->second.end()) {
        ++retained;
      }
    }
  }
  return total_partitions - retained;
}

/// Independent lower bound on moves for ANY balanced next assignment:
/// each member retains at most min(|previous ∩ valid|, quota), with
/// exactly (P mod N) members allowed the larger quota — maximized by
/// granting those to the members with the most retainable partitions.
std::size_t minimal_moves(const Assignment& previous,
                          const std::vector<std::string>& members,
                          std::size_t total_partitions) {
  const std::size_t lo = total_partitions / members.size();
  const std::size_t remainder = total_partitions % members.size();
  std::size_t retained_max = 0;
  std::size_t over_lo = 0;
  for (const auto& m : members) {
    const auto it = previous.find(m);
    const std::size_t prev = it == previous.end() ? 0 : it->second.size();
    retained_max += std::min(prev, lo);
    if (prev >= lo + 1) ++over_lo;
  }
  retained_max += std::min(remainder, over_lo);
  return total_partitions - retained_max;
}

TEST(GroupAssignor, StickyMovesProvablyMinimalOnMembershipChange) {
  Rng rng(0xA551614);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 7));
    const int p = static_cast<int>(rng.uniform_int(1, 32));
    auto members = make_members(n);
    const auto partitions = make_partitions(p);
    // A well-formed starting point: the assignor's own output.
    const auto previous = GroupCoordinator::compute_assignment(
        AssignmentStrategy::kCooperativeSticky, members, partitions, {});

    // Mutate membership: add a member, remove one, or both.
    const int mutation = static_cast<int>(rng.uniform_int(0, 2));
    if (mutation == 0 || mutation == 2) {
      members.push_back("member-90-joined");
    }
    if ((mutation == 1 || mutation == 2) && members.size() > 1) {
      members.erase(
          members.begin() +
          static_cast<std::ptrdiff_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(members.size()) - 1)));
    }
    std::sort(members.begin(), members.end());

    const auto next = GroupCoordinator::compute_assignment(
        AssignmentStrategy::kCooperativeSticky, members, partitions,
        previous);
    expect_partitions_the_set(next, members, partitions);
    expect_balanced(next, partitions.size(), members.size());
    EXPECT_EQ(moved_count(previous, next, partitions.size()),
              minimal_moves(previous, members, partitions.size()))
        << "trial " << trial << ": sticky moved more than necessary (N="
        << members.size() << " P=" << p << ")";
  }
}

TEST(GroupAssignor, StickyIsANoOpWhenMembershipIsUnchanged) {
  Rng rng(0xA551615);
  for (int trial = 0; trial < 100; ++trial) {
    const auto members =
        make_members(static_cast<int>(rng.uniform_int(1, 8)));
    const auto partitions =
        make_partitions(static_cast<int>(rng.uniform_int(0, 32)));
    const auto previous = GroupCoordinator::compute_assignment(
        AssignmentStrategy::kCooperativeSticky, members, partitions, {});
    const auto next = GroupCoordinator::compute_assignment(
        AssignmentStrategy::kCooperativeSticky, members, partitions,
        previous);
    EXPECT_EQ(moved_count(previous, next, partitions.size()), 0u);
  }
}

TEST(GroupAssignor, EagerRangesAreContiguousAndOrdered) {
  const auto members = make_members(3);
  const auto next = GroupCoordinator::compute_assignment(
      AssignmentStrategy::kEager, members, make_partitions(8), {});
  // Range assignment: sorted partitions dealt out in contiguous chunks,
  // the first (P mod N) members taking the larger share.
  EXPECT_EQ(next.at("member-10"),
            (std::vector<std::int32_t>{0, 1, 2}));
  EXPECT_EQ(next.at("member-11"),
            (std::vector<std::int32_t>{3, 4, 5}));
  EXPECT_EQ(next.at("member-12"), (std::vector<std::int32_t>{6, 7}));
}

}  // namespace
}  // namespace ks::kafka
