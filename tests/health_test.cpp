// Unit tests for the Burrow-style health evaluator: verdict state machine
// (OK / WARN / STALL / STOP), alert open/resolve lifecycle and timeline
// mirroring, the rule-based cluster detectors, and the text rendering.
// All driven directly through the probe interface with synthetic numbers,
// no simulation behind it.
#include <gtest/gtest.h>

#include <string>

#include "obs/health.hpp"
#include "obs/timeline.hpp"

namespace ks::obs {
namespace {

HealthConfig small_config() {
  HealthConfig c;
  c.interval = 10;
  c.lag_window = 4;
  c.stall_ticks = 3;
  c.stop_ticks = 2;
  c.cold_start_ticks = 8;
  c.under_replicated_ticks = 2;
  c.flap_window = 6;
  c.flap_threshold = 3;
  c.flush_stall_ticks = 3;
  return c;
}

// One probe+evaluate tick for a single partition.
void tick(HealthMonitor& m, TimePoint t, std::int64_t committed,
          std::int64_t hw, bool owned = true) {
  m.begin_tick(t);
  m.observe_partition(0, committed, hw, owned);
  m.evaluate(t);
}

TEST(HealthMonitor, AdvancingCommitsStayOkEvenWithLargeLag) {
  HealthMonitor m(small_config(), nullptr);
  for (int i = 0; i < 20; ++i) {
    // Commits advance every tick; lag is huge but constant.
    tick(m, i * 10, /*committed=*/i + 1, /*hw=*/i + 1000);
  }
  EXPECT_EQ(m.verdict(0), LagVerdict::kOk);
  EXPECT_TRUE(m.alerts().empty());
}

TEST(HealthMonitor, MonotoneLagGrowthUnderLiveCommitsIsWarnNotAlert) {
  HealthMonitor m(small_config(), nullptr);
  for (int i = 0; i < 20; ++i) {
    // Commits advance, but the HW pulls away twice as fast every tick.
    tick(m, i * 10, i + 1, 2 * i + 10);
  }
  EXPECT_EQ(m.verdict(0), LagVerdict::kWarn);
  EXPECT_TRUE(m.alerts().empty()) << "WARN must never open an alert";
}

TEST(HealthMonitor, FrozenCommitsWithLagStallAfterConfiguredTicks) {
  ClusterTimeline timeline(64);
  HealthMonitor m(small_config(), &timeline);
  tick(m, 0, 5, 5);    // Commits start.
  tick(m, 10, 6, 6);   // ...and advance: ever_committed.
  // Committed freezes while the HW keeps moving.
  tick(m, 20, 6, 8);   // frozen 1
  tick(m, 30, 6, 10);  // frozen 2: growing lag may WARN, but no STALL yet.
  EXPECT_NE(m.verdict(0), LagVerdict::kStall) << "one tick early";
  EXPECT_TRUE(m.alerts().empty());
  tick(m, 40, 6, 12);  // frozen 3 = stall_ticks
  EXPECT_EQ(m.verdict(0), LagVerdict::kStall);
  ASSERT_EQ(m.alerts().size(), 1u);
  EXPECT_EQ(m.alerts()[0].detector, HealthDetector::kLagStall);
  EXPECT_EQ(m.alerts()[0].opened, 40);
  EXPECT_EQ(m.alerts()[0].resolved, -1);

  // Commits resume: the alert resolves and the verdict returns to OK.
  tick(m, 50, 12, 12);
  EXPECT_EQ(m.verdict(0), LagVerdict::kOk);
  EXPECT_EQ(m.alerts()[0].resolved, 50);
  EXPECT_EQ(m.alerts_resolved(), 1u);
  EXPECT_EQ(m.open_alerts(), 0u);

  // Both lifecycle edges were mirrored onto the timeline.
  bool open_seen = false;
  bool resolve_seen = false;
  for (const auto& e : timeline.events()) {
    if (e.kind == ClusterEventKind::kHealthAlertOpen) open_seen = true;
    if (e.kind == ClusterEventKind::kHealthAlertResolved) resolve_seen = true;
  }
  EXPECT_TRUE(open_seen);
  EXPECT_TRUE(resolve_seen);
}

TEST(HealthMonitor, UnownedPartitionWithLagEscalatesToStop) {
  HealthMonitor m(small_config(), nullptr);
  tick(m, 0, 4, 4);
  tick(m, 10, 5, 5);
  tick(m, 20, 5, 9, /*owned=*/false);  // unowned 1
  tick(m, 30, 5, 9, /*owned=*/false);  // unowned 2 = stop_ticks
  EXPECT_EQ(m.verdict(0), LagVerdict::kStop);
  ASSERT_FALSE(m.alerts().empty());
  EXPECT_EQ(m.alerts().back().detector, HealthDetector::kLagStop);
  // Re-ownership with resumed commits resolves the STOP alert.
  tick(m, 40, 9, 9, /*owned=*/true);
  EXPECT_EQ(m.verdict(0), LagVerdict::kOk);
  EXPECT_EQ(m.open_alerts(), 0u);
}

TEST(HealthMonitor, ColdPartitionStallsOnlyAfterTheLongGrace) {
  HealthMonitor m(small_config(), nullptr);
  // Commits never start; lag present from the first tick.
  for (int i = 0; i < 7; ++i) {
    tick(m, i * 10, 0, 10);
    EXPECT_EQ(m.verdict(0), LagVerdict::kOk) << "tick " << i;
  }
  tick(m, 70, 0, 10);  // cold_ticks reaches cold_start_ticks = 8.
  EXPECT_EQ(m.verdict(0), LagVerdict::kStall);
}

TEST(HealthMonitor, PersistentUnderReplicationAlertsAndResolves) {
  HealthMonitor m(small_config(), nullptr);
  m.begin_tick(0);
  m.observe_isr(0, 3, 3);
  m.evaluate(0);
  m.begin_tick(10);
  m.observe_isr(0, 2, 3);  // under 1
  m.evaluate(10);
  EXPECT_TRUE(m.alerts().empty());
  m.begin_tick(20);
  m.observe_isr(0, 2, 3);  // under 2 = under_replicated_ticks
  m.evaluate(20);
  ASSERT_EQ(m.alerts().size(), 1u);
  EXPECT_EQ(m.alerts()[0].detector, HealthDetector::kUnderReplicated);
  m.begin_tick(30);
  m.observe_isr(0, 3, 3);  // Follower caught back up.
  m.evaluate(30);
  EXPECT_EQ(m.open_alerts(), 0u);
}

TEST(HealthMonitor, IsrOscillationTripsTheFlappingDetector) {
  HealthMonitor m(small_config(), nullptr);
  // ISR size alternates every tick: transitions accumulate in the window.
  for (int i = 0; i < 6; ++i) {
    m.begin_tick(i * 10);
    m.observe_isr(0, (i % 2 == 0) ? 3 : 2, 3);
    m.evaluate(i * 10);
  }
  bool flapping = false;
  for (const auto& a : m.alerts()) {
    if (a.detector == HealthDetector::kIsrFlapping) flapping = true;
  }
  EXPECT_TRUE(flapping);
}

TEST(HealthMonitor, ParkedAcksOverFrozenWatermarksIsFlushStall) {
  HealthMonitor m(small_config(), nullptr);
  for (int i = 0; i < 5; ++i) {
    m.begin_tick(i * 10);
    // Acks parked while the broker's high watermarks never move.
    m.observe_broker(1, /*parked_acks=*/4, /*hw_sum=*/100);
    m.evaluate(i * 10);
  }
  bool stall = false;
  for (const auto& a : m.alerts()) {
    if (a.detector == HealthDetector::kFlushStall && a.broker == 1) {
      stall = true;
    }
  }
  EXPECT_TRUE(stall);
  // Watermark movement (flush completed) resolves it.
  m.begin_tick(50);
  m.observe_broker(1, 4, 120);
  m.evaluate(50);
  EXPECT_EQ(m.open_alerts(), 0u);
}

TEST(HealthMonitor, ExportCarriesVerdictsAlertsSeriesAndSketch) {
  HealthMonitor m(small_config(), nullptr);
  m.observe_latency(0, 150);
  m.observe_latency(0, 30000);
  tick(m, 0, 5, 5);
  tick(m, 10, 6, 6);
  tick(m, 20, 6, 9);
  tick(m, 30, 6, 9);
  tick(m, 40, 6, 9);  // STALL.

  const auto h = m.export_health();
  EXPECT_EQ(h.ticks, 5u);
  EXPECT_EQ(h.interval_us, 10u);
  ASSERT_EQ(h.verdicts.size(), 1u);
  EXPECT_EQ(h.verdicts[0].verdict, "STALL");
  EXPECT_EQ(h.verdicts[0].worst, "STALL");
  EXPECT_EQ(h.verdicts[0].lag, 3);
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts[0].detector, "lag_stall");
  EXPECT_EQ(h.alerts[0].resolved_us, -1);
  ASSERT_EQ(h.sketches.size(), 1u);
  EXPECT_EQ(h.sketches[0].count, 2u);
  bool lag_series = false;
  for (const auto& s : h.series) {
    if (s.name == "group_lag_p0") lag_series = true;
  }
  EXPECT_TRUE(lag_series);

  // The renderer narrates the same facts.
  RunReport report;
  report.health = h;
  const auto text = render_health_text(report);
  EXPECT_NE(text.find("STALL"), std::string::npos);
  EXPECT_NE(text.find("lag_stall"), std::string::npos);
  EXPECT_NE(text.find("group_lag_p0"), std::string::npos);
}

}  // namespace
}  // namespace ks::obs
