// End-to-end integration tests across the full stack: cluster + NetEm +
// TCP + producer + consumer, checked against the paper's measurement
// methodology (consumer-side key census).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "kafka/cluster.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"
#include "kafka/source.hpp"
#include "net/netem.hpp"
#include "sim/simulation.hpp"
#include "tcp/endpoint.hpp"
#include "testbed/experiment.hpp"

namespace ks {
namespace {

// Full pipeline with a real consumer draining over TCP: the consumer's view
// must match the cluster-side census exactly.
TEST(Integration, ConsumerCensusMatchesLogCensus) {
  sim::Simulation sim(7);
  kafka::Cluster cluster(sim, {.num_brokers = 3});
  cluster.create_topic("t", 1);
  auto& leader = cluster.leader_of("t", 0);
  const auto partition = cluster.partition_id("t", 0);

  net::DuplexLink plink(sim, {.bandwidth_bps = 100e6},
                        std::make_shared<net::ConstantDelay>(millis(2)),
                        std::make_shared<net::BernoulliLoss>(0.15),
                        std::make_shared<net::ConstantDelay>(millis(2)),
                        std::make_shared<net::NoLoss>(), "p");
  tcp::Pair pconn(sim, {}, plink, "p");
  leader.attach(pconn.server);

  kafka::Source source(sim, {.total_messages = 1000, .message_size = 150});
  auto pc = kafka::ProducerConfig::at_least_once();
  pc.message_timeout = seconds(300);
  kafka::Producer producer(sim, pc, pconn.client, source, partition);

  cluster.start();
  producer.start();
  while (!producer.finished() && sim.now() < seconds(600)) {
    sim.run(sim.now() + millis(200));
  }
  ASSERT_TRUE(producer.finished());
  sim.run(sim.now() + seconds(10));

  // Consume everything over a clean link.
  net::DuplexLink clink(sim, {.bandwidth_bps = 100e6},
                        std::make_shared<net::ConstantDelay>(millis(1)),
                        std::make_shared<net::NoLoss>(),
                        std::make_shared<net::ConstantDelay>(millis(1)),
                        std::make_shared<net::NoLoss>(), "c");
  tcp::Pair cconn(sim, {}, clink, "c");
  leader.attach(cconn.server);
  kafka::Consumer consumer(sim, {}, cconn.client, partition);
  std::vector<std::uint32_t> counts(1000, 0);
  consumer.on_record = [&](const kafka::FetchedRecord& r) {
    ASSERT_LT(r.key, 1000u);
    ++counts[r.key];
  };
  bool drained = false;
  consumer.on_drained = [&] { drained = true; };
  consumer.start();
  consumer.drain_until(leader.partition(partition)->log_end_offset());
  sim.run(sim.now() + seconds(60));
  ASSERT_TRUE(drained);

  std::uint64_t delivered = 0, duplicated = 0, lost = 0;
  for (auto c : counts) {
    if (c == 0) ++lost;
    else if (c == 1) ++delivered;
    else ++duplicated;
  }
  const auto census = cluster.census("t", 1000);
  EXPECT_EQ(delivered, census.delivered);
  EXPECT_EQ(duplicated, census.duplicated);
  EXPECT_EQ(lost, census.lost);
  // At-least-once with generous timeout on a recoverable network: no loss.
  EXPECT_EQ(lost, 0u);
}

TEST(Integration, ExactlyOnceEliminatesDuplicatesUnderRetries) {
  testbed::Scenario sc;
  sc.num_messages = 2500;
  sc.packet_loss = 0.2;
  sc.network_delay = millis(40);
  sc.message_timeout = millis(2500);
  sc.request_timeout = millis(500);
  sc.seed = 11;

  sc.semantics = kafka::DeliverySemantics::kAtLeastOnce;
  const auto alo = testbed::run_experiment(sc);
  sc.semantics = kafka::DeliverySemantics::kExactlyOnce;
  const auto eos = testbed::run_experiment(sc);

  EXPECT_GT(alo.census.duplicated, 0u) << "scenario too gentle to retry";
  EXPECT_EQ(eos.census.duplicated, 0u);
  EXPECT_GT(eos.batches_deduplicated, 0u);
}

TEST(Integration, AtLeastOnceBeatsAtMostOnceUnderFaults) {
  testbed::Scenario sc;
  sc.num_messages = 6000;
  sc.packet_loss = 0.19;
  sc.network_delay = millis(100);
  sc.message_timeout = millis(2000);
  sc.seed = 12;

  double amo_loss = 0.0, alo_loss = 0.0;
  for (std::uint64_t seed : {12u, 13u, 14u}) {
    sc.seed = seed;
    sc.semantics = kafka::DeliverySemantics::kAtMostOnce;
    amo_loss += testbed::run_experiment(sc).p_loss;
    sc.semantics = kafka::DeliverySemantics::kAtLeastOnce;
    alo_loss += testbed::run_experiment(sc).p_loss;
  }
  EXPECT_LT(alo_loss, amo_loss);
}

TEST(Integration, BatchingReducesLossUnderHeavyLoss) {
  testbed::Scenario sc;
  sc.num_messages = 6000;
  sc.packet_loss = 0.3;
  sc.message_timeout = millis(2000);
  sc.source_interval = micros(4000);
  sc.semantics = kafka::DeliverySemantics::kAtLeastOnce;

  double b1 = 0.0, b10 = 0.0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    sc.seed = seed;
    sc.batch_size = 1;
    b1 += testbed::run_experiment(sc).p_loss;
    sc.batch_size = 10;
    b10 += testbed::run_experiment(sc).p_loss;
  }
  EXPECT_LT(b10, b1);
}

TEST(Integration, PollingIntervalCuresOverload) {
  testbed::Scenario sc;
  sc.num_messages = 5000;
  sc.source_mode = testbed::SourceMode::kOnDemand;
  sc.message_timeout = millis(500);
  sc.semantics = kafka::DeliverySemantics::kAtMostOnce;

  double full = 0.0, paced = 0.0;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    sc.seed = seed;
    sc.poll_interval = 0;
    full += testbed::run_experiment(sc).p_loss;
    sc.poll_interval = millis(50);
    paced += testbed::run_experiment(sc).p_loss;
  }
  EXPECT_LT(paced, full);
}

TEST(Integration, MultiPartitionClusterServesParallelProducers) {
  sim::Simulation sim(9);
  kafka::Cluster cluster(sim, {.num_brokers = 3});
  cluster.create_topic("t", 3);  // One partition per broker.

  struct ProducerSlot {
    std::unique_ptr<net::DuplexLink> link;
    std::unique_ptr<tcp::Pair> conn;
    std::unique_ptr<kafka::Source> source;
    std::unique_ptr<kafka::Producer> producer;
  };
  std::vector<ProducerSlot> slots;
  for (int p = 0; p < 3; ++p) {
    ProducerSlot slot;
    slot.link = std::make_unique<net::DuplexLink>(
        sim, net::Link::Config{.bandwidth_bps = 100e6},
        std::make_shared<net::ConstantDelay>(millis(1)),
        std::make_shared<net::NoLoss>(),
        std::make_shared<net::ConstantDelay>(millis(1)),
        std::make_shared<net::NoLoss>(), "p" + std::to_string(p));
    slot.conn = std::make_unique<tcp::Pair>(sim, tcp::Config{}, *slot.link,
                                            "p" + std::to_string(p));
    cluster.leader_of("t", p).attach(slot.conn->server);
    slot.source = std::make_unique<kafka::Source>(
        sim, kafka::Source::Config{.total_messages = 500,
                                   .message_size = 100});
    auto pc = kafka::ProducerConfig::at_least_once();
    pc.producer_id = static_cast<std::uint64_t>(p + 1);
    slot.producer = std::make_unique<kafka::Producer>(
        sim, pc, slot.conn->client, *slot.source,
        cluster.partition_id("t", p));
    slots.push_back(std::move(slot));
  }
  cluster.start();
  for (auto& s : slots) s.producer->start();
  auto all_done = [&] {
    for (auto& s : slots) {
      if (!s.producer->finished()) return false;
    }
    return true;
  };
  while (!all_done() && sim.now() < seconds(300)) {
    sim.run(sim.now() + millis(200));
  }
  EXPECT_TRUE(all_done());
  // Every partition holds its 500 records.
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(cluster.leader_of("t", p)
                  .partition(cluster.partition_id("t", p))
                  ->log_end_offset(),
              500);
  }
}

// Sum of every labeled instance of one metric in a report.
double metric_sum(const obs::RunReport& rep, const std::string& name) {
  double sum = 0.0;
  for (const auto& m : rep.metrics) {
    if (m.name == name) sum += m.value;
  }
  return sum;
}

// Tentpole acceptance: a faulty-network run returns a populated RunReport
// whose cross-layer numbers reconcile with the census.
TEST(Observability, RunReportPopulatedAndCrossLayerConsistent) {
  testbed::Scenario sc;
  sc.num_messages = 3000;
  sc.packet_loss = 0.19;
  sc.network_delay = millis(50);
  sc.message_timeout = millis(2000);
  sc.semantics = kafka::DeliverySemantics::kAtLeastOnce;
  sc.seed = 41;
  const auto r = testbed::run_experiment(sc);
  const auto& rep = r.report;

  // Every layer registered metrics and the sampler produced time series.
  EXPECT_FALSE(rep.metrics.empty());
  EXPECT_FALSE(rep.series.empty());
  EXPECT_FALSE(rep.histograms.empty());
  ASSERT_TRUE(rep.summary.count("p_loss"));
  EXPECT_DOUBLE_EQ(rep.summary.at("p_loss"), r.p_loss);

  // The report mirrors the component stats the result carries.
  EXPECT_DOUBLE_EQ(metric_sum(rep, "sim_events_total"),
                   static_cast<double>(r.events));
  EXPECT_DOUBLE_EQ(
      rep.metric("tcp_retransmissions_total{conn=\"prod-conn:client\"}"),
      static_cast<double>(r.tcp_retransmissions));

  // Under 19% injected loss TCP must be retransmitting, and the link must
  // attribute drops to its loss model.
  EXPECT_GT(r.tcp_retransmissions, 0u);
  EXPECT_GT(metric_sum(rep, "link_packets_dropped_total"), 0.0);

  // Census reconciliation: every lost key has a recorded pre-append cause.
  const double failed =
      metric_sum(rep, "kafka_producer_records_failed_total");
  const double dropped_full =
      metric_sum(rep, "kafka_producer_records_dropped_queue_full_total");
  EXPECT_LE(static_cast<double>(r.census.lost),
            static_cast<double>(r.source_overruns + r.expired_in_queue) +
                failed + dropped_full);

  // The sampled message trace captured lifecycles.
  EXPECT_GT(rep.trace_sample_every, 0u);
  EXPECT_FALSE(rep.trace.empty());

  // And the artifact serializes to JSON on disk.
  const std::string path = testing::TempDir() + "ks_run_report.json";
  ASSERT_TRUE(rep.write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char first = 0;
  ASSERT_EQ(std::fread(&first, 1, 1, f), 1u);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(first, '{');
}

// On a healthy, lightly loaded link the transport layer must be silent:
// no retransmissions, no RTOs, no link drops — and the report agrees.
TEST(Observability, CleanLinkReportsNoRetransmissions) {
  testbed::Scenario sc;
  sc.num_messages = 1000;
  // Well under the ~294 msg/s serialization ceiling for 200 B messages, so
  // the producer keeps up and nothing is lost upstream either.
  sc.source_interval = millis(5);
  sc.broker_regimes = false;
  sc.seed = 42;
  const auto r = testbed::run_experiment(sc);

  EXPECT_EQ(r.tcp_retransmissions, 0u);
  EXPECT_EQ(r.tcp_rto_events, 0u);
  EXPECT_DOUBLE_EQ(metric_sum(r.report, "tcp_retransmissions_total"), 0.0);
  EXPECT_DOUBLE_EQ(metric_sum(r.report, "link_packets_dropped_total"), 0.0);
  EXPECT_EQ(r.census.lost, 0u);
  EXPECT_DOUBLE_EQ(r.p_loss, 0.0);
}

// Disabling the sampler must still produce the final snapshot, just no
// series.
TEST(Observability, SamplerCanBeDisabledPerScenario) {
  testbed::Scenario sc;
  sc.num_messages = 500;
  sc.source_interval = millis(5);
  sc.broker_regimes = false;
  sc.sample_interval = 0;
  sc.seed = 43;
  const auto r = testbed::run_experiment(sc);
  EXPECT_TRUE(r.report.series.empty());
  EXPECT_FALSE(r.report.metrics.empty());
}

}  // namespace
}  // namespace ks
