// Broker, source, cluster and consumer tests.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "kafka/cluster.hpp"
#include "kafka_test_rig.hpp"

namespace ks::kafka {
namespace {

using testutil::Rig;
using testutil::RigConfig;

TEST(Source, OnDemandProducesAllKeys) {
  sim::Simulation sim(1);
  Source source(sim, {.total_messages = 5, .message_size = 77});
  for (Key k = 0; k < 5; ++k) {
    auto r = source.pull();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key, k);
    EXPECT_EQ(r->value_size, 77);
  }
  EXPECT_FALSE(source.pull().has_value());
  EXPECT_TRUE(source.exhausted());
}

TEST(Source, RealTimeEmitsOnSchedule) {
  sim::Simulation sim(1);
  Source source(sim, {.total_messages = 10, .emit_interval = millis(10)});
  source.start();
  // The first message is emitted immediately, then one per interval.
  sim.run(millis(35));
  EXPECT_EQ(source.buffered(), 4u);  // t=0,10,20,30 (fifth at t=40).
  auto r = source.pull();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->created_at, 0);  // Stamped at emission.
}

TEST(Source, RingOverrunDropsOldest) {
  sim::Simulation sim(1);
  Source source(sim, {.total_messages = 100,
                      .emit_interval = millis(1),
                      .buffer_capacity = 10});
  source.start();
  sim.run(seconds(1));
  EXPECT_EQ(source.buffered(), 10u);
  EXPECT_EQ(source.stats().overrun_dropped, 90u);
  auto r = source.pull();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->key, 90u);  // Oldest survivors only.
}

TEST(Source, SizeJitterStaysPositive) {
  sim::Simulation sim(1);
  Source source(sim, {.total_messages = 1000,
                      .message_size = 10,
                      .size_jitter = 50});
  while (auto r = source.pull()) {
    EXPECT_GE(r->value_size, 1);
    EXPECT_LE(r->value_size, 60);
  }
}

TEST(Source, IntervalFnDrivesEmission) {
  sim::Simulation sim(1);
  Source::Config config;
  config.total_messages = 20;
  config.emit_interval = millis(1);  // Enables real-time mode.
  config.interval_fn = [](TimePoint) { return millis(100); };
  Source source(sim, config);
  source.start();
  sim.run(millis(550));
  EXPECT_EQ(source.buffered(), 6u);  // t=0,100,...,500.
}

TEST(Broker, ServesFetchAfterProduce) {
  RigConfig config;
  config.messages = 100;
  Rig rig(config);
  rig.run();
  ASSERT_EQ(rig.log().log_end_offset(), 100);

  // Attach a consumer over a second connection.
  net::DuplexLink clink(rig.sim, {.bandwidth_bps = 100e6},
                        std::make_shared<net::ConstantDelay>(millis(1)),
                        std::make_shared<net::NoLoss>(),
                        std::make_shared<net::ConstantDelay>(millis(1)),
                        std::make_shared<net::NoLoss>(), "consumer");
  tcp::Pair cconn(rig.sim, {}, clink, "consumer");
  rig.broker.attach(cconn.server);

  Consumer consumer(rig.sim, {}, cconn.client, /*partition=*/0);
  std::vector<Key> keys;
  consumer.on_record = [&](const FetchedRecord& r) { keys.push_back(r.key); };
  bool drained = false;
  consumer.on_drained = [&] { drained = true; };
  consumer.start();
  consumer.drain_until(100);
  rig.sim.run(rig.sim.now() + seconds(30));

  EXPECT_TRUE(drained);
  ASSERT_EQ(keys.size(), 100u);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(keys[k], k);
  EXPECT_GT(rig.broker.stats().fetch_requests, 0u);
}

TEST(Broker, BadRegimeSlowsService) {
  // Same workload with and without regimes: the stalled broker takes
  // longer to drain the same produce stream.
  auto run_with = [](bool regimes) {
    RigConfig config;
    config.messages = 2000;
    config.source_interval = millis(1);
    config.broker.request_overhead = micros(800);
    config.broker.regime.enabled = regimes;
    config.broker.regime.mean_good = millis(100);
    config.broker.regime.mean_bad = millis(100);
    config.broker.bad_slowdown = 50.0;
    Rig rig(config);
    rig.run(seconds(1200));
    return rig.sim.now() - seconds(10);  // Strip the fixed drain tail.
  };
  EXPECT_GT(run_with(true), run_with(false) * 3 / 2);
}

TEST(Broker, StatsCountRequests) {
  RigConfig config;
  config.messages = 500;
  config.producer.batch_size = 5;
  Rig rig(config);
  rig.run();
  EXPECT_EQ(rig.broker.stats().records_appended, 500u);
  EXPECT_GE(rig.broker.stats().produce_requests, 100u);
  EXPECT_GT(rig.broker.stats().bytes_appended, 0);
}

TEST(Broker, OnAppendObserverFires) {
  RigConfig config;
  config.messages = 50;
  Rig rig(config);
  std::set<Key> seen;
  rig.broker.on_append = [&](std::int32_t partition, const Record& r,
                             std::int64_t offset) {
    EXPECT_EQ(partition, 0);
    EXPECT_GE(offset, 0);
    seen.insert(r.key);
  };
  rig.run();
  EXPECT_EQ(seen.size(), 50u);
}

TEST(Source, FirstKeyOffsetsRange) {
  sim::Simulation sim(1);
  Source source(sim, {.total_messages = 3, .first_key = 100});
  EXPECT_EQ(source.pull()->key, 100u);
  EXPECT_EQ(source.pull()->key, 101u);
  EXPECT_EQ(source.pull()->key, 102u);
  EXPECT_FALSE(source.pull().has_value());
  EXPECT_TRUE(source.exhausted());
}

TEST(Broker, FailStopsServiceResumeContinues) {
  RigConfig config;
  config.messages = 300;
  config.source_interval = millis(2);
  config.producer.message_timeout = seconds(300);
  Rig rig(config);
  rig.broker.start();
  rig.source.start();
  rig.producer.start();
  rig.sim.at(millis(100), [&] { rig.broker.fail(); });
  rig.sim.run_for(millis(400));
  EXPECT_TRUE(rig.broker.is_down());
  const auto appended_during_outage = rig.broker.stats().records_appended;
  rig.sim.run_for(millis(300));
  EXPECT_EQ(rig.broker.stats().records_appended, appended_during_outage);
  rig.broker.resume();
  while (!rig.producer.finished() && rig.sim.now() < seconds(120)) {
    rig.sim.run_for(millis(200));
  }
  rig.sim.run_for(seconds(5));
  EXPECT_EQ(rig.log().log_end_offset(), 300);  // Nothing lost, just late.
}

TEST(Cluster, TopicPartitionsRoundRobin) {
  sim::Simulation sim(1);
  Cluster cluster(sim, {.num_brokers = 3});
  cluster.create_topic("t", 5);
  const auto& refs = cluster.topic("t");
  ASSERT_EQ(refs.size(), 5u);
  EXPECT_EQ(refs[0].leader, 0);
  EXPECT_EQ(refs[1].leader, 1);
  EXPECT_EQ(refs[2].leader, 2);
  EXPECT_EQ(refs[3].leader, 0);
  // Partition ids are cluster-global and unique.
  std::set<std::int32_t> ids;
  for (const auto& r : refs) ids.insert(r.id);
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Cluster, UnknownTopicThrows) {
  sim::Simulation sim(1);
  Cluster cluster(sim, {.num_brokers = 1});
  EXPECT_THROW(cluster.topic("nope"), std::out_of_range);
}

TEST(Cluster, CensusCountsKeyMultiplicity) {
  sim::Simulation sim(1);
  Cluster cluster(sim, {.num_brokers = 2});
  cluster.create_topic("t", 1);
  auto& log = cluster.leader_of("t", 0).create_partition(
      cluster.partition_id("t", 0));
  std::vector<Record> batch = {{0, 10, 0, 0}, {1, 10, 0, 0}, {1, 10, 0, 0}};
  log.append(batch, 0);
  const auto census = cluster.census("t", 4);
  EXPECT_EQ(census.delivered, 1u);   // Key 0.
  EXPECT_EQ(census.duplicated, 1u);  // Key 1 twice.
  EXPECT_EQ(census.lost, 2u);        // Keys 2, 3.
  EXPECT_DOUBLE_EQ(census.p_loss(), 0.5);
  EXPECT_DOUBLE_EQ(census.p_duplicate(), 0.25);
  EXPECT_EQ(census.appended_records, 3u);
}

TEST(Consumer, PollsWhenCaughtUpThenDrains) {
  RigConfig config;
  config.messages = 200;
  config.source_interval = millis(2);
  Rig rig(config);

  net::DuplexLink clink(rig.sim, {.bandwidth_bps = 100e6},
                        std::make_shared<net::ConstantDelay>(millis(1)),
                        std::make_shared<net::NoLoss>(),
                        std::make_shared<net::ConstantDelay>(millis(1)),
                        std::make_shared<net::NoLoss>(), "consumer");
  tcp::Pair cconn(rig.sim, {}, clink, "consumer");
  rig.broker.attach(cconn.server);
  Consumer consumer(rig.sim, {}, cconn.client, 0);
  std::vector<std::int64_t> offsets;
  consumer.on_record = [&](const FetchedRecord& r) {
    offsets.push_back(r.offset);
  };
  bool drained = false;
  consumer.on_drained = [&] { drained = true; };

  // Start consumer BEFORE the producer finishes: it must tail the log.
  rig.broker.start();
  rig.source.start();
  rig.producer.start();
  consumer.start();
  while (!rig.producer.finished() && rig.sim.now() < seconds(300)) {
    rig.sim.run(rig.sim.now() + millis(100));
  }
  consumer.drain_until(rig.log().log_end_offset());
  rig.sim.run(rig.sim.now() + seconds(30));

  EXPECT_TRUE(drained);
  ASSERT_EQ(offsets.size(), 200u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], static_cast<std::int64_t>(i));
  }
}

}  // namespace
}  // namespace ks::kafka
