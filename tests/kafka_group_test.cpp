// Consumer-group coordinator tests: the join/sync/heartbeat protocol,
// generation fencing of zombie commits, session-timeout eviction, eager vs
// cooperative-sticky revocation, static membership, and the compacted
// `__consumer_offsets`-style commit log.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kafka/group.hpp"
#include "sim/simulation.hpp"

namespace ks::kafka {
namespace {

using Assignment = std::vector<std::int32_t>;

GroupCoordinator::Config make_config(int partitions,
                                     AssignmentStrategy strategy) {
  GroupCoordinator::Config cfg;
  cfg.strategy = strategy;
  for (int p = 0; p < partitions; ++p) cfg.partitions.push_back(p);
  return cfg;
}

/// Join with callbacks that record every revocation/assignment.
struct MemberLog {
  std::string id;
  std::vector<std::pair<std::int32_t, Assignment>> revoked;
  std::vector<std::pair<std::int32_t, Assignment>> assigned;

  std::string join(GroupCoordinator& coord,
                   const std::string& instance_id = "") {
    GroupCoordinator::MemberCallbacks cbs;
    cbs.on_revoked = [this](std::int32_t gen, const Assignment& parts) {
      revoked.emplace_back(gen, parts);
    };
    cbs.on_assigned = [this](std::int32_t gen, const Assignment& parts) {
      assigned.emplace_back(gen, parts);
    };
    id = coord.join(instance_id, std::move(cbs));
    return id;
  }
};

TEST(GroupCoordinator, JoinSyncHeartbeatHappyPath) {
  sim::Simulation sim(1);
  GroupCoordinator coord(sim,
                         make_config(4, AssignmentStrategy::kEager));
  EXPECT_EQ(coord.state(), GroupCoordinator::State::kEmpty);

  MemberLog a;
  MemberLog b;
  MemberLog c;
  a.join(coord);
  b.join(coord);
  c.join(coord);
  EXPECT_EQ(coord.state(), GroupCoordinator::State::kPreparingRebalance);
  sim.run_for(millis(100));  // Past the join window.

  EXPECT_EQ(coord.state(), GroupCoordinator::State::kStable);
  EXPECT_EQ(coord.member_count(), 3u);
  EXPECT_EQ(coord.generation(), 1);
  ASSERT_EQ(a.assigned.size(), 1u);
  ASSERT_EQ(b.assigned.size(), 1u);
  ASSERT_EQ(c.assigned.size(), 1u);

  // The three assignments partition {0,1,2,3}: no orphan, no double-owner.
  std::set<std::int32_t> owned;
  std::size_t total = 0;
  for (const auto* m : {&a, &b, &c}) {
    for (auto p : m->assigned.back().second) owned.insert(p);
    total += m->assigned.back().second.size();
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(owned, (std::set<std::int32_t>{0, 1, 2, 3}));

  // Heartbeats while stable are accepted.
  EXPECT_EQ(coord.heartbeat(a.id, coord.generation()), ErrorCode::kNone);
  EXPECT_EQ(coord.heartbeat(b.id, coord.generation()), ErrorCode::kNone);
  EXPECT_GE(coord.stats().heartbeats, 2u);
}

TEST(GroupCoordinator, HeartbeatSignalsRebalanceInProgress) {
  sim::Simulation sim(2);
  GroupCoordinator coord(sim, make_config(2, AssignmentStrategy::kEager));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));
  ASSERT_EQ(coord.state(), GroupCoordinator::State::kStable);

  MemberLog b;
  b.join(coord);  // Opens a join window: the group is rebalancing.
  EXPECT_EQ(coord.heartbeat(a.id, coord.generation()),
            ErrorCode::kRebalanceInProgress);
  sim.run_for(millis(100));
  EXPECT_EQ(coord.state(), GroupCoordinator::State::kStable);
  EXPECT_EQ(coord.heartbeat(a.id, coord.generation()), ErrorCode::kNone);
}

TEST(GroupCoordinator, HeartbeatFromUnknownMemberIsRejected) {
  sim::Simulation sim(3);
  GroupCoordinator coord(sim, make_config(1, AssignmentStrategy::kEager));
  EXPECT_EQ(coord.heartbeat("member-99", 0), ErrorCode::kUnknownMemberId);
}

TEST(GroupCoordinator, CommitRoundTripAndAppendOnlyLog) {
  sim::Simulation sim(4);
  GroupCoordinator coord(sim, make_config(2, AssignmentStrategy::kEager));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));

  EXPECT_EQ(coord.committed(0), 0);
  EXPECT_EQ(coord.commit(a.id, coord.generation(), 0, 5), ErrorCode::kNone);
  EXPECT_EQ(coord.commit(a.id, coord.generation(), 0, 9), ErrorCode::kNone);
  EXPECT_EQ(coord.commit(a.id, coord.generation(), 1, 3), ErrorCode::kNone);
  EXPECT_EQ(coord.committed(0), 9);
  EXPECT_EQ(coord.committed(1), 3);

  // Append-only: superseded commits are retained until compaction.
  ASSERT_EQ(coord.offset_log().size(), 3u);
  EXPECT_EQ(coord.offset_log()[0].offset, 5);
  EXPECT_EQ(coord.offset_log()[1].offset, 9);
  EXPECT_EQ(coord.stats().commits_accepted, 3u);
}

TEST(GroupCoordinator, OffsetLogCompactionKeepsLatestPerPartition) {
  sim::Simulation sim(5);
  GroupCoordinator coord(sim, make_config(3, AssignmentStrategy::kEager));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));

  for (std::int64_t off = 1; off <= 10; ++off) {
    ASSERT_EQ(coord.commit(a.id, coord.generation(), 0, off),
              ErrorCode::kNone);
    ASSERT_EQ(coord.commit(a.id, coord.generation(), 1, off * 2),
              ErrorCode::kNone);
  }
  ASSERT_EQ(coord.offset_log().size(), 20u);
  const auto removed = coord.compact_offsets();
  EXPECT_EQ(removed, 18u);
  ASSERT_EQ(coord.offset_log().size(), 2u);
  // The compacted view and the committed() answers agree before and after.
  EXPECT_EQ(coord.committed(0), 10);
  EXPECT_EQ(coord.committed(1), 20);
  const auto compacted = coord.compacted_offsets();
  EXPECT_EQ(compacted.at(0), 10);
  EXPECT_EQ(compacted.at(1), 20);
  // Compacting an already-compacted log removes nothing.
  EXPECT_EQ(coord.compact_offsets(), 0u);
}

TEST(GroupCoordinator, ZombieCommitIsFencedAfterEviction) {
  sim::Simulation sim(6);
  GroupCoordinator coord(sim, make_config(2, AssignmentStrategy::kEager));
  MemberLog a;
  MemberLog b;
  a.join(coord);
  b.join(coord);
  sim.run_for(millis(100));
  const auto gen = coord.generation();
  ASSERT_EQ(coord.commit(a.id, gen, 0, 4), ErrorCode::kNone);

  // Only b heartbeats; a's session expires and it is evicted.
  for (int i = 1; i <= 10; ++i) {
    sim.at(sim.now() + millis(i * 100),
           [&coord, &b] { coord.heartbeat(b.id, coord.generation()); });
  }
  sim.run_for(millis(1100));
  EXPECT_EQ(coord.stats().evictions, 1u);
  EXPECT_FALSE(coord.has_member(a.id));
  EXPECT_TRUE(coord.has_member(b.id));

  // The zombie wakes and tries to move the committed offset: fenced, and
  // the committed offset is unchanged.
  EXPECT_EQ(coord.commit(a.id, gen, 0, 8), ErrorCode::kUnknownMemberId);
  EXPECT_EQ(coord.committed(0), 4);
  EXPECT_GE(coord.stats().commits_fenced, 1u);
  EXPECT_EQ(coord.heartbeat(a.id, gen), ErrorCode::kUnknownMemberId);
}

TEST(GroupCoordinator, StaleGenerationCommitIsFenced) {
  sim::Simulation sim(7);
  GroupCoordinator coord(sim, make_config(2, AssignmentStrategy::kEager));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));
  const auto old_gen = coord.generation();

  MemberLog b;
  b.join(coord);
  sim.run_for(millis(100));
  ASSERT_GT(coord.generation(), old_gen);

  // A commit stamped with the superseded generation must not land, even
  // though the member itself is still in the group.
  EXPECT_EQ(coord.commit(a.id, old_gen, 0, 7), ErrorCode::kIllegalGeneration);
  EXPECT_EQ(coord.committed(0), 0);
  EXPECT_EQ(coord.stats().commits_fenced, 1u);
  EXPECT_EQ(coord.commit(a.id, coord.generation(), 0, 7), ErrorCode::kNone);
  EXPECT_EQ(coord.committed(0), 7);
}

TEST(GroupCoordinator, SessionTimeoutEvictionReassignsPartitions) {
  sim::Simulation sim(8);
  GroupCoordinator coord(sim, make_config(4, AssignmentStrategy::kEager));
  MemberLog a;
  MemberLog b;
  a.join(coord);
  b.join(coord);
  sim.run_for(millis(100));
  ASSERT_EQ(coord.member_count(), 2u);
  EXPECT_EQ(coord.assignment_of(a.id).size(), 2u);

  // Keep a alive; let b go silent past the 400 ms session timeout.
  for (int i = 1; i <= 12; ++i) {
    sim.at(sim.now() + millis(i * 100),
           [&coord, &a] { coord.heartbeat(a.id, coord.generation()); });
  }
  sim.run_for(millis(1300));
  EXPECT_EQ(coord.member_count(), 1u);
  EXPECT_EQ(coord.stats().evictions, 1u);
  // The survivor owns everything after the eviction rebalance.
  EXPECT_EQ(coord.assignment_of(a.id).size(), 4u);
}

TEST(GroupCoordinator, EagerRebalanceRevokesEverything) {
  sim::Simulation sim(9);
  GroupCoordinator coord(sim, make_config(4, AssignmentStrategy::kEager));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));
  ASSERT_EQ(coord.assignment_of(a.id).size(), 4u);

  MemberLog b;
  b.join(coord);
  sim.run_for(millis(100));

  // Eager: a's entire assignment was revoked up front, then rebuilt.
  ASSERT_EQ(a.revoked.size(), 1u);
  EXPECT_EQ(a.revoked.front().second.size(), 4u);
  EXPECT_EQ(coord.assignment_of(a.id).size(), 2u);
  EXPECT_EQ(coord.assignment_of(b.id).size(), 2u);
}

TEST(GroupCoordinator, CooperativeStickyRevokesOnlyMovedPartitions) {
  sim::Simulation sim(10);
  GroupCoordinator coord(
      sim, make_config(4, AssignmentStrategy::kCooperativeSticky));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));
  const auto before = coord.assignment_of(a.id);
  ASSERT_EQ(before.size(), 4u);
  const auto moved_before = coord.stats().partitions_moved;

  MemberLog b;
  b.join(coord);
  sim.run_for(millis(100));

  // Cooperative: a gave up exactly the two partitions b now owns and kept
  // the rest — it was never revoked wholesale.
  ASSERT_EQ(a.revoked.size(), 1u);
  EXPECT_EQ(a.revoked.front().second.size(), 2u);
  const auto kept = coord.assignment_of(a.id);
  EXPECT_EQ(kept.size(), 2u);
  for (auto p : kept) {
    EXPECT_TRUE(std::find(before.begin(), before.end(), p) != before.end());
  }
  EXPECT_EQ(coord.assignment_of(b.id).size(), 2u);
  EXPECT_EQ(coord.stats().partitions_moved - moved_before, 2u);
}

TEST(GroupCoordinator, StaticMembershipRejoinsWithoutRebalance) {
  sim::Simulation sim(11);
  GroupCoordinator coord(
      sim, make_config(4, AssignmentStrategy::kCooperativeSticky));
  MemberLog a;
  MemberLog b;
  a.join(coord, "inst-a");
  b.join(coord, "inst-b");
  sim.run_for(millis(100));
  const auto gen = coord.generation();
  const auto rebalances = coord.stats().rebalances;
  const auto assignment = coord.assignment_of(a.id);
  ASSERT_EQ(assignment.size(), 2u);

  // Bounce a: same instance id reclaims the same member id and assignment
  // with no generation bump and no rebalance.
  MemberLog a2;
  const auto id2 = a2.join(coord, "inst-a");
  EXPECT_EQ(id2, a.id);
  EXPECT_EQ(coord.generation(), gen);
  EXPECT_EQ(coord.stats().rebalances, rebalances);
  EXPECT_EQ(coord.stats().static_rejoins, 1u);
  // The returning member was told its (unchanged) assignment again.
  ASSERT_EQ(a2.assigned.size(), 1u);
  EXPECT_EQ(a2.assigned.front().second, assignment);
  EXPECT_TRUE(a2.revoked.empty());
}

TEST(GroupCoordinator, DynamicRejoinTriggersRebalance) {
  sim::Simulation sim(12);
  GroupCoordinator coord(sim, make_config(2, AssignmentStrategy::kEager));
  MemberLog a;
  a.join(coord);
  sim.run_for(millis(100));
  const auto gen = coord.generation();
  const auto rebalances = coord.stats().rebalances;

  MemberLog b;
  b.join(coord);  // Dynamic: a fresh member id and a new generation.
  sim.run_for(millis(100));
  EXPECT_NE(b.id, a.id);
  EXPECT_GT(coord.generation(), gen);
  EXPECT_GT(coord.stats().rebalances, rebalances);
}

TEST(GroupCoordinator, LeaveShrinksTheGroup) {
  sim::Simulation sim(13);
  GroupCoordinator coord(sim, make_config(4, AssignmentStrategy::kEager));
  MemberLog a;
  MemberLog b;
  a.join(coord);
  b.join(coord);
  sim.run_for(millis(100));
  ASSERT_EQ(coord.member_count(), 2u);

  coord.leave(b.id);
  sim.run_for(millis(100));
  EXPECT_EQ(coord.member_count(), 1u);
  EXPECT_EQ(coord.stats().leaves, 1u);
  EXPECT_EQ(coord.assignment_of(a.id).size(), 4u);

  coord.leave(a.id);
  sim.run_for(millis(100));
  EXPECT_EQ(coord.state(), GroupCoordinator::State::kEmpty);
  EXPECT_EQ(coord.member_count(), 0u);
}

TEST(GroupCoordinator, JoinWindowCoalescesMembershipChanges) {
  sim::Simulation sim(14);
  GroupCoordinator coord(sim, make_config(6, AssignmentStrategy::kEager));
  MemberLog a;
  MemberLog b;
  MemberLog c;
  // All three join within one 40 ms window: one rebalance, one generation.
  a.join(coord);
  sim.at(millis(5), [&] { b.join(coord); });
  sim.at(millis(10), [&] { c.join(coord); });
  sim.run_for(millis(200));
  EXPECT_EQ(coord.generation(), 1);
  EXPECT_EQ(coord.stats().rebalances, 1u);
  EXPECT_EQ(coord.assignment_of(a.id).size(), 2u);
  EXPECT_EQ(coord.assignment_of(b.id).size(), 2u);
  EXPECT_EQ(coord.assignment_of(c.id).size(), 2u);
}

}  // namespace
}  // namespace ks::kafka
