// Unit tests for the partition log and idempotent-producer deduplication,
// plus the message-state tracker (Fig. 2 / Table I).
#include <gtest/gtest.h>

#include <vector>

#include "kafka/log.hpp"
#include "kafka/state_machine.hpp"

namespace ks::kafka {
namespace {

std::vector<Record> records(Key first, int count, Bytes size = 100) {
  std::vector<Record> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Record{first + static_cast<Key>(i), size, 0, 0});
  }
  return out;
}

TEST(PartitionLog, AppendAssignsContiguousOffsets) {
  PartitionLog log;
  auto r1 = log.append(records(0, 3), 10);
  EXPECT_EQ(r1.base_offset, 0);
  auto r2 = log.append(records(3, 2), 20);
  EXPECT_EQ(r2.base_offset, 3);
  EXPECT_EQ(log.log_end_offset(), 5);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log.entries()[static_cast<std::size_t>(i)].offset, i);
    EXPECT_EQ(log.entries()[static_cast<std::size_t>(i)].key,
              static_cast<Key>(i));
  }
}

TEST(PartitionLog, EmptyAppendIsNoop) {
  PartitionLog log;
  auto r = log.append({}, 0);
  EXPECT_EQ(r.error, ErrorCode::kNone);
  EXPECT_EQ(log.log_end_offset(), 0);
}

TEST(PartitionLog, AppendTimeRecorded) {
  PartitionLog log;
  log.append(records(0, 1), millis(123));
  EXPECT_EQ(log.entries()[0].append_time, millis(123));
}

TEST(PartitionLog, SizeBytesAccumulates) {
  PartitionLog log;
  log.append(records(0, 2, 100), 0);
  EXPECT_EQ(log.size_bytes(), 2 * (100 + kRecordOverhead));
}

TEST(PartitionLog, ReadRanges) {
  PartitionLog log;
  log.append(records(0, 10), 0);
  EXPECT_EQ(log.read(0, 5).size(), 5u);
  EXPECT_EQ(log.read(7, 100).size(), 3u);
  EXPECT_EQ(log.read(10, 5).size(), 0u);
  EXPECT_EQ(log.read(-1, 5).size(), 0u);
  EXPECT_EQ(log.read(3, 2)[0].key, 3u);
}

TEST(PartitionLog, IdempotentDedupDropsRetriedBatch) {
  PartitionLog log;
  auto first = log.append(records(0, 3), 0, /*producer_id=*/7,
                          /*base_sequence=*/0);
  EXPECT_FALSE(first.deduplicated);
  auto retry = log.append(records(0, 3), 1, 7, 0);
  EXPECT_TRUE(retry.deduplicated);
  EXPECT_EQ(retry.error, ErrorCode::kDuplicateSequence);
  EXPECT_EQ(log.log_end_offset(), 3);
  EXPECT_EQ(log.deduplicated_batches(), 1u);
}

TEST(PartitionLog, IdempotentAcceptsNextSequence) {
  PartitionLog log;
  log.append(records(0, 3), 0, 7, 0);
  auto next = log.append(records(3, 2), 0, 7, 3);
  EXPECT_FALSE(next.deduplicated);
  EXPECT_EQ(log.log_end_offset(), 5);
}

TEST(PartitionLog, IdempotencePerProducer) {
  PartitionLog log;
  log.append(records(0, 2), 0, 7, 0);
  // A different producer id with the same sequence is NOT a duplicate.
  auto other = log.append(records(2, 2), 0, 8, 0);
  EXPECT_FALSE(other.deduplicated);
  EXPECT_EQ(log.log_end_offset(), 4);
}

TEST(PartitionLog, ReadEdgeCases) {
  PartitionLog log;
  log.append(records(0, 4), 0);
  EXPECT_EQ(log.read(0, 0).size(), 0u);    // Zero-budget fetch.
  EXPECT_EQ(log.read(4, 1).size(), 0u);    // Exactly at the log end.
  EXPECT_EQ(log.read(-100, 8).size(), 0u); // Far-negative offset.
  EXPECT_EQ(log.read(1000, 8).size(), 0u); // Far beyond the end.
  // An in-range read is never silently extended past the end.
  EXPECT_EQ(log.read(3, 1000).size(), 1u);
}

TEST(PartitionLog, TruncateClampsNegativeAndBeyondEnd) {
  PartitionLog log;
  log.append(records(0, 5), 0);
  log.truncate_to(1000);  // At/after the end: no-op, not an extension.
  EXPECT_EQ(log.log_end_offset(), 5);
  EXPECT_EQ(log.truncations(), 0u);
  log.truncate_to(-3);  // Negative clamps to zero: drop everything.
  EXPECT_EQ(log.log_end_offset(), 0);
  EXPECT_EQ(log.truncations(), 1u);
  EXPECT_EQ(log.truncated_entries(), 5);
  EXPECT_EQ(log.size_bytes(), 0);
}

TEST(PartitionLog, ReadSpanningTruncationSeesOnlySurvivors) {
  PartitionLog log;
  log.append(records(0, 10), 0);
  log.truncate_to(6);
  // A read across the old tail stops at the new end; a read entirely in
  // the truncated range finds nothing.
  EXPECT_EQ(log.read(4, 10).size(), 2u);
  EXPECT_EQ(log.read(4, 10)[1].offset, 5);
  EXPECT_EQ(log.read(6, 4).size(), 0u);
  EXPECT_EQ(log.read(8, 4).size(), 0u);
}

TEST(PartitionLog, TruncateRewindsReplicatedHighWatermark) {
  PartitionLog log;
  log.enable_replication();
  log.append(records(0, 8), 0);
  log.advance_high_watermark(6);
  log.truncate_to(4);
  EXPECT_EQ(log.high_watermark(), 4);
  // The watermark never re-advances past the shortened end on its own.
  log.advance_high_watermark(100);
  EXPECT_EQ(log.high_watermark(), 4);
}

TEST(PartitionLog, TruncateBelowProducerSequenceReopensIt) {
  PartitionLog log;
  log.append(records(0, 3), 0, /*producer_id=*/7, /*base_sequence=*/0);
  log.append(records(3, 2), 0, 7, 3);
  EXPECT_EQ(log.last_sequence_of(7), 4);
  // Truncation below the producer's last batch rebuilds its dedup state
  // from the survivors: the truncated batch's retry must append again
  // (it is gone from the log), while the surviving batch still dedups.
  log.truncate_to(3);
  EXPECT_EQ(log.last_sequence_of(7), 2);
  auto surviving_retry = log.append(records(0, 3), 0, 7, 0);
  EXPECT_TRUE(surviving_retry.deduplicated);
  auto truncated_retry = log.append(records(3, 2), 0, 7, 3);
  EXPECT_FALSE(truncated_retry.deduplicated);
  EXPECT_EQ(truncated_retry.base_offset, 3);
  EXPECT_EQ(log.log_end_offset(), 5);
}

TEST(PartitionLog, TruncateToZeroForgetsProducerEntirely) {
  PartitionLog log;
  log.append(records(0, 2), 0, 9, 0);
  log.truncate_to(0);
  EXPECT_EQ(log.last_sequence_of(9), -1);
  // With no surviving state the retry is indistinguishable from a first
  // send and appends cleanly — exactly Kafka's UNKNOWN_PRODUCER_ID reset.
  auto retry = log.append(records(0, 2), 0, 9, 0);
  EXPECT_FALSE(retry.deduplicated);
  EXPECT_EQ(log.log_end_offset(), 2);
}

TEST(PartitionLog, NonIdempotentAppendsDuplicates) {
  PartitionLog log;
  log.append(records(0, 2), 0);
  log.append(records(0, 2), 0);  // producer_id = 0: no dedup.
  EXPECT_EQ(log.log_end_offset(), 4);
}

TEST(StateTracker, InitialStateReady) {
  MessageStateTracker tracker(4);
  EXPECT_EQ(tracker.state_of(0), MessageState::kReady);
  EXPECT_EQ(tracker.case_of(0), DeliveryCase::kUnsent);
}

TEST(StateTracker, Case1DeliveredFirstTry) {
  MessageStateTracker tracker(2);
  tracker.on_send_attempt(0, 1);
  tracker.on_append(0);
  EXPECT_EQ(tracker.state_of(0), MessageState::kDelivered);
  EXPECT_EQ(tracker.case_of(0), DeliveryCase::kCase1);
}

TEST(StateTracker, Case2LostAfterSingleAttempt) {
  MessageStateTracker tracker(2);
  tracker.on_send_attempt(0, 1);
  EXPECT_EQ(tracker.state_of(0), MessageState::kLost);
  EXPECT_EQ(tracker.case_of(0), DeliveryCase::kCase2);
}

TEST(StateTracker, Case3LostAfterRetries) {
  MessageStateTracker tracker(2);
  tracker.on_send_attempt(0, 1);
  tracker.on_send_attempt(0, 2);
  tracker.on_send_attempt(0, 3);
  EXPECT_EQ(tracker.case_of(0), DeliveryCase::kCase3);
}

TEST(StateTracker, Case4DeliveredAfterRetries) {
  MessageStateTracker tracker(2);
  tracker.on_send_attempt(0, 1);
  tracker.on_send_attempt(0, 2);
  tracker.on_append(0);
  EXPECT_EQ(tracker.case_of(0), DeliveryCase::kCase4);
  EXPECT_EQ(tracker.state_of(0), MessageState::kDelivered);
}

TEST(StateTracker, Case5Duplicated) {
  MessageStateTracker tracker(2);
  tracker.on_send_attempt(0, 1);
  tracker.on_send_attempt(0, 2);
  tracker.on_append(0);
  tracker.on_append(0);
  EXPECT_EQ(tracker.case_of(0), DeliveryCase::kCase5);
  EXPECT_EQ(tracker.state_of(0), MessageState::kDuplicated);
}

TEST(StateTracker, CensusProbabilities) {
  MessageStateTracker tracker(10);
  // 2 delivered first try, 1 delivered after retry, 3 lost once,
  // 1 lost after retries, 1 duplicated, 2 never sent.
  for (Key k : {0u, 1u}) {
    tracker.on_send_attempt(k, 1);
    tracker.on_append(k);
  }
  tracker.on_send_attempt(2, 2);
  tracker.on_append(2);
  for (Key k : {3u, 4u, 5u}) tracker.on_send_attempt(k, 1);
  tracker.on_send_attempt(6, 4);
  tracker.on_send_attempt(7, 2);
  tracker.on_append(7);
  tracker.on_append(7);

  const auto census = tracker.census();
  EXPECT_EQ(census.total, 10u);
  EXPECT_EQ(census.cases[0], 2u);  // Unsent.
  EXPECT_EQ(census.cases[1], 2u);
  EXPECT_EQ(census.cases[2], 3u);
  EXPECT_EQ(census.cases[3], 1u);
  EXPECT_EQ(census.cases[4], 1u);
  EXPECT_EQ(census.cases[5], 1u);
  EXPECT_DOUBLE_EQ(census.p_loss(), 0.6);       // Unsent + case2 + case3.
  EXPECT_DOUBLE_EQ(census.p_duplicate(), 0.1);  // Case5.
}

TEST(StateTracker, OutOfRangeKeysIgnored) {
  MessageStateTracker tracker(2);
  tracker.on_send_attempt(99, 1);
  tracker.on_append(99);
  EXPECT_EQ(tracker.census().total, 2u);
}

}  // namespace
}  // namespace ks::kafka
