// Multi-partition producer path: the keyed / round-robin partitioners, the
// park-and-retry PartitionRouter lanes, per-partition idempotent sequence
// spaces, and the multi-partition experiment wiring end to end (including
// the live consumer-group happy path).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "kafka/partitioner.hpp"
#include "kafka/source.hpp"
#include "sim/simulation.hpp"
#include "testbed/experiment.hpp"

namespace ks::kafka {
namespace {

TEST(Partitioner, KeyedIsDeterministicAndInRange) {
  for (int parts = 1; parts <= 7; ++parts) {
    for (Key key = 0; key < 500; ++key) {
      const int a = partition_index_for(PartitionerKind::kKeyed, key, 0, parts);
      const int b =
          partition_index_for(PartitionerKind::kKeyed, key, 99, parts);
      EXPECT_EQ(a, b) << "keyed routing must ignore the counter";
      EXPECT_GE(a, 0);
      EXPECT_LT(a, parts);
    }
  }
}

TEST(Partitioner, KeyedSpreadsAdjacentKeys) {
  // The SplitMix64 finalizer must spread sequential keys: over 4 partitions
  // and 2000 keys, no partition is starved or dominant.
  constexpr int kParts = 4;
  int counts[kParts] = {0, 0, 0, 0};
  for (Key key = 0; key < 2000; ++key) {
    ++counts[partition_index_for(PartitionerKind::kKeyed, key, 0, kParts)];
  }
  for (int p = 0; p < kParts; ++p) {
    EXPECT_GT(counts[p], 2000 / kParts / 2) << "partition " << p;
    EXPECT_LT(counts[p], 2000 / kParts * 2) << "partition " << p;
  }
}

TEST(Partitioner, RoundRobinCyclesOnTheCounter) {
  for (std::uint64_t counter = 0; counter < 12; ++counter) {
    EXPECT_EQ(partition_index_for(PartitionerKind::kRoundRobin, /*key=*/7,
                                  counter, 3),
              static_cast<int>(counter % 3));
  }
}

TEST(PartitionRouter, LanesRouteExclusivelyAndConserveRecords) {
  sim::Simulation sim(1);
  Source::Config cfg;
  cfg.total_messages = 30;
  cfg.message_size = 100;  // On-demand: always available at pull.
  Source source(sim, cfg);
  PartitionRouter router(source, 3, PartitionerKind::kKeyed);

  // Drain all lanes round-robin; every key must surface on exactly one
  // lane, and that lane must match the partitioner's pick.
  std::map<Key, int> seen;
  std::uint64_t safety = 0;
  while (seen.size() < 30 && safety++ < 1000) {
    for (int p = 0; p < 3; ++p) {
      if (auto r = router.lane(p).pull()) {
        EXPECT_EQ(partition_index_for(PartitionerKind::kKeyed, r->key, 0, 3),
                  p);
        EXPECT_TRUE(seen.emplace(r->key, p).second)
            << "key " << r->key << " surfaced twice";
      }
    }
  }
  EXPECT_EQ(seen.size(), 30u);
  std::uint64_t routed_total = 0;
  for (auto n : router.routed()) routed_total += n;
  EXPECT_EQ(routed_total, 30u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(router.lane(p).exhausted());
    EXPECT_FALSE(router.lane(p).pull().has_value());
  }
}

TEST(PartitionRouter, PullParksForeignRecordInsteadOfDraining) {
  sim::Simulation sim(2);
  Source::Config cfg;
  cfg.total_messages = 6;
  cfg.message_size = 100;
  Source source(sim, cfg);
  PartitionRouter router(source, 2, PartitionerKind::kRoundRobin);

  // Round-robin: key0 -> lane0, key1 -> lane1, ... Lane 0's second pull
  // hits key1 (lane 1's record): it must park it and report empty rather
  // than keep draining the upstream.
  auto r0 = router.lane(0).pull();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->key, 0u);
  EXPECT_FALSE(router.lane(0).pull().has_value());  // key1 parked on lane 1.
  EXPECT_EQ(source.stats().pulled, 2u) << "one pull per park, no draining";

  // The parked record is served from lane 1's queue without a new upstream
  // pull; lane 0 then finds its own next record (key2).
  auto r1 = router.lane(1).pull();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->key, 1u);
  EXPECT_EQ(source.stats().pulled, 2u);
  auto r2 = router.lane(0).pull();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->key, 2u);
  EXPECT_FALSE(router.lane(0).exhausted());
}

testbed::Scenario multi_partition_scenario() {
  testbed::Scenario sc;
  sc.seed = 77;
  sc.num_messages = 200;
  sc.message_size = 200;
  sc.source_mode = testbed::SourceMode::kOnDemand;
  sc.semantics = DeliverySemantics::kExactlyOnce;
  sc.message_timeout = seconds(120);
  sc.partitions = 4;
  sc.partitioner = PartitionerKind::kRoundRobin;
  return sc;
}

TEST(MultiPartitionExperiment, RoundRobinBalancesAndConservesTheCensus) {
  const auto result = testbed::run_experiment(multi_partition_scenario());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.census.delivered, 200u);
  EXPECT_EQ(result.census.lost, 0u);
  EXPECT_EQ(result.census.duplicated, 0u);
  EXPECT_EQ(result.report.summary.at("partitions"), 4.0);
  EXPECT_EQ(result.report.summary.at("partitioner"), 1.0);  // Round-robin.
  // Round-robin over a clean network: exactly N/4 records per partition.
  double total = 0.0;
  for (int p = 0; p < 4; ++p) {
    const auto records =
        result.report.summary.at("partition_records_" + std::to_string(p));
    EXPECT_EQ(records, 50.0) << "partition " << p;
    total += records;
  }
  EXPECT_EQ(total, 200.0);
}

TEST(MultiPartitionExperiment, KeyedRoutingCoversEveryPartition) {
  auto sc = multi_partition_scenario();
  sc.partitioner = PartitionerKind::kKeyed;
  sc.partitions = 2;
  const auto result = testbed::run_experiment(sc);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.census.delivered, 200u);
  double total = 0.0;
  for (int p = 0; p < 2; ++p) {
    const auto records =
        result.report.summary.at("partition_records_" + std::to_string(p));
    EXPECT_GT(records, 0.0) << "partition " << p << " starved";
    total += records;
  }
  EXPECT_EQ(total, 200.0);
}

// Exactly-once under loss-driven retries: broker dedup state is per
// partition log, so per-partition producer sequence spaces must keep the
// census duplicate-free across all partitions at once.
TEST(MultiPartitionExperiment, PerPartitionSequencesDeduplicateUnderLoss) {
  auto sc = multi_partition_scenario();
  // TCP rides out plain loss; a tight per-request ack timeout is what
  // forces producer-level retries (and thus re-sent batches to dedup).
  sc.packet_loss = 0.25;
  sc.request_timeout = millis(120);
  sc.retries_override = 50;
  const auto result = testbed::run_experiment(sc);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.requests_retried, 0u)
      << "loss never forced a retry; the dedup path was not exercised";
  EXPECT_EQ(result.census.duplicated, 0u);
  EXPECT_EQ(result.census.lost, 0u);
  EXPECT_EQ(result.offset_gap_violations, 0u);
}

TEST(MultiPartitionExperiment, GroupHappyPathDrainsEverythingOnce) {
  auto sc = multi_partition_scenario();
  sc.partitions = 2;
  sc.group_size = 2;
  sc.group_commit_mode = CommitMode::kCommitAfterDeliver;
  const auto result = testbed::run_experiment(sc);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.group_drained);
  // No faults: every committed record delivered exactly once, commits all
  // accepted, nobody fenced, one generation per member join wave.
  EXPECT_EQ(result.group_unique_delivered, 200u);
  EXPECT_EQ(result.group_duplicate_deliveries, 0u);
  EXPECT_EQ(result.group_same_generation_dups, 0u);
  EXPECT_EQ(result.group_lost, 0u);
  EXPECT_EQ(result.group_commits_fenced, 0u);
  EXPECT_GT(result.group_commits, 0u);
  EXPECT_GE(result.group_records_fetched, 200u);
  EXPECT_EQ(result.report.summary.at("group_size"), 2.0);
  EXPECT_EQ(result.report.summary.at("group_lost"), 0.0);
  EXPECT_EQ(result.report.summary.at("group_drained"), 1.0);
  // Committed offsets reached each partition's high watermark.
  for (int p = 0; p < 2; ++p) {
    EXPECT_EQ(
        result.report.summary.at("partition_committed_" + std::to_string(p)),
        result.report.summary.at("partition_records_" + std::to_string(p)))
        << "partition " << p;
  }
}

TEST(MultiPartitionExperiment, SinglePartitionSummaryOmitsGroupKeys) {
  // The single-partition experiment must look exactly like it always did:
  // no partition/group summary keys leak into the baseline report.
  testbed::Scenario sc;
  sc.seed = 5;
  sc.num_messages = 50;
  sc.source_mode = testbed::SourceMode::kOnDemand;
  const auto result = testbed::run_experiment(sc);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.report.summary.count("partitions"), 0u);
  EXPECT_EQ(result.report.summary.count("group_size"), 0u);
  EXPECT_EQ(result.report.summary.count("partition_records_0"), 0u);
}

}  // namespace
}  // namespace ks::kafka
