// Producer behaviour: delivery, batching, linger, polling, timeouts,
// retries, admission, resets and reconfiguration.
#include <gtest/gtest.h>

#include <set>

#include "kafka_test_rig.hpp"

namespace ks::kafka {
namespace {

using testutil::Rig;
using testutil::RigConfig;

TEST(Producer, DeliversAllOnHealthyNetwork) {
  Rig rig(RigConfig{.messages = 2000});
  rig.run();
  EXPECT_TRUE(rig.producer.finished());
  EXPECT_EQ(rig.log().log_end_offset(), 2000);
  EXPECT_EQ(rig.producer.stats().records_acked, 2000u);
  EXPECT_EQ(rig.producer.stats().records_failed, 0u);
}

TEST(Producer, KeysAreUniqueAndComplete) {
  Rig rig(RigConfig{.messages = 1500});
  rig.run();
  std::set<Key> keys;
  for (const auto& e : rig.log().entries()) keys.insert(e.key);
  EXPECT_EQ(keys.size(), 1500u);
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), 1499u);
}

TEST(Producer, AtMostOnceDeliversWithoutAcks) {
  RigConfig config;
  config.producer = ProducerConfig::at_most_once();
  config.messages = 1000;
  Rig rig(config);
  rig.run();
  EXPECT_EQ(rig.log().log_end_offset(), 1000);
  EXPECT_EQ(rig.producer.stats().responses, 0u);
  EXPECT_EQ(rig.producer.stats().records_written, 1000u);
}

TEST(Producer, BatchSizeCapsRequests) {
  RigConfig config;
  config.messages = 1000;
  config.producer.batch_size = 10;
  // A slow broker plus a small in-flight cap backs the queue up so
  // batches actually form when slots open.
  config.broker.request_overhead = millis(2);
  config.producer.max_in_flight = 5;
  Rig rig(config);
  rig.run();
  const auto& s = rig.producer.stats();
  EXPECT_EQ(s.records_sent, 1000u);
  // With batching, far fewer requests than records.
  EXPECT_LE(s.requests_sent, 1000u);
  EXPECT_GE(s.records_sent / s.requests_sent, 2u);
}

TEST(Producer, BatchOfOneSendsPerRecord) {
  RigConfig config;
  config.messages = 300;
  config.producer.batch_size = 1;
  Rig rig(config);
  rig.run();
  EXPECT_EQ(rig.producer.stats().requests_sent, 300u);
}

TEST(Producer, LingerWaitsForFullBatches) {
  RigConfig config;
  config.messages = 400;
  config.source_interval = millis(1);
  config.producer.batch_size = 8;
  config.producer.linger = millis(50);
  Rig rig(config);
  rig.run();
  const auto& s = rig.producer.stats();
  EXPECT_EQ(s.records_sent, 400u);
  // Linger should produce mostly-full batches: ~400/8 = 50 requests.
  EXPECT_LE(s.requests_sent, 120u);
}

TEST(Producer, PollIntervalPacesThroughput) {
  RigConfig config;
  config.messages = 200;
  config.producer.poll_interval = millis(5);
  Rig rig(config);
  rig.run();
  // 200 messages at >= 5 ms apart: at least ~1 second of simulated time.
  EXPECT_GE(rig.sim.now(), millis(950));
  EXPECT_EQ(rig.log().log_end_offset(), 200);
}

TEST(Producer, MessageTimeoutExpiresBacklog) {
  RigConfig config;
  config.messages = 2000;
  config.producer = ProducerConfig::at_most_once();
  config.producer.message_timeout = millis(300);
  // Broker far slower than the producer and a small socket: the backlog
  // waits in the accumulator, where T_o applies.
  config.broker.request_overhead = millis(5);
  config.tcp.send_buffer = 4 * 1024;
  config.tcp.receive_window = 4 * 1024;
  Rig rig(config);
  rig.run();
  EXPECT_GT(rig.producer.stats().expired, 0u);
  EXPECT_LT(rig.log().log_end_offset(), 2000);
}

TEST(Producer, GenerousTimeoutLosesNothing) {
  RigConfig config;
  config.messages = 800;
  config.producer = ProducerConfig::at_most_once();
  config.producer.message_timeout = seconds(300);
  config.broker.request_overhead = millis(2);
  Rig rig(config);
  rig.run(seconds(1200));
  EXPECT_EQ(rig.producer.stats().expired, 0u);
  EXPECT_EQ(rig.log().log_end_offset(), 800);
}

TEST(Producer, RetriesOnRequestTimeout) {
  RigConfig config;
  config.messages = 50;
  config.producer.request_timeout = millis(100);
  config.producer.retries = 10;
  // Broker slower than the request timeout: every request times out at
  // least once, but all messages must still land (eventually) and the
  // duplicates appear in the log.
  config.broker.request_overhead = millis(150);
  Rig rig(config);
  rig.run(seconds(1200));
  EXPECT_GT(rig.producer.stats().request_timeouts, 0u);
  EXPECT_GT(rig.producer.stats().requests_retried, 0u);
  EXPECT_GE(rig.log().log_end_offset(), 50);  // Includes duplicates.
}

TEST(Producer, RetriesExhaustedFailsRecords) {
  RigConfig config;
  config.messages = 20;
  config.producer.request_timeout = millis(50);
  config.producer.retries = 1;
  config.producer.message_timeout = seconds(300);
  config.broker.request_overhead = millis(400);  // Hopelessly slow.
  Rig rig(config);
  int failed = 0;
  rig.producer.on_record_failed = [&](const Record&) { ++failed; };
  rig.run(seconds(1200));
  EXPECT_GT(failed, 0);
  EXPECT_EQ(rig.producer.stats().records_failed,
            static_cast<std::uint64_t>(failed));
}

TEST(Producer, IdempotenceDeduplicatesRetries) {
  RigConfig config;
  config.messages = 60;
  config.producer = ProducerConfig::exactly_once();
  config.producer.request_timeout = millis(100);
  config.producer.retries = 10;
  config.broker.request_overhead = millis(150);
  Rig rig(config);
  rig.run(seconds(1200));
  EXPECT_GT(rig.producer.stats().requests_retried, 0u);
  // Despite retries, the log holds each key at most once.
  std::set<Key> keys;
  for (const auto& e : rig.log().entries()) {
    EXPECT_TRUE(keys.insert(e.key).second) << "duplicate key " << e.key;
  }
  EXPECT_GT(rig.broker.stats().batches_deduplicated, 0u);
}

TEST(Producer, AckPacedAdmissionBoundsUnresolved) {
  RigConfig config;
  config.messages = 3000;
  config.producer.admission = AdmissionPolicy::kAckPaced;
  config.producer.ack_window = 50;
  config.broker.request_overhead = millis(1);
  Rig rig(config);
  rig.broker.start();
  rig.source.start();
  rig.producer.start();
  bool checked = false;
  rig.sim.at(millis(500), [&] {
    EXPECT_LE(rig.producer.queued_records() +
                  rig.producer.in_flight_requests() * 1,
              60u);
    checked = true;
  });
  while (!rig.producer.finished() && rig.sim.now() < seconds(300)) {
    rig.sim.run(rig.sim.now() + millis(100));
  }
  EXPECT_TRUE(checked);
  EXPECT_EQ(rig.log().log_end_offset(), 3000);
}

TEST(Producer, SurvivesConnectionResets) {
  RigConfig config;
  config.messages = 400;
  config.source_interval = millis(10);  // Span the outage below.
  config.tcp.max_consecutive_rtos = 3;
  config.producer.retries = 20;
  config.producer.request_timeout = millis(300);
  config.producer.message_timeout = seconds(300);  // Outlive the outage.
  Rig rig(config);
  rig.broker.start();
  rig.source.start();
  rig.producer.start();
  // Blackhole the forward path for a while mid-run, then heal it.
  rig.sim.at(millis(200), [&] {
    rig.link.a_to_b.set_loss_model(std::make_shared<net::BernoulliLoss>(1.0));
  });
  rig.sim.at(seconds(8), [&] {
    rig.link.a_to_b.set_loss_model(std::make_shared<net::NoLoss>());
  });
  while (!rig.producer.finished() && rig.sim.now() < seconds(600)) {
    rig.sim.run(rig.sim.now() + millis(200));
  }
  rig.sim.run(rig.sim.now() + seconds(10));
  EXPECT_GT(rig.producer.stats().connection_resets, 0u);
  // At-least-once: every key eventually lands (duplicates allowed).
  std::set<Key> keys;
  for (const auto& e : rig.log().entries()) keys.insert(e.key);
  EXPECT_EQ(keys.size(), 400u);
}

TEST(Producer, AtMostOnceResetLosesSilently) {
  RigConfig config;
  config.messages = 500;
  config.producer = ProducerConfig::at_most_once();
  config.producer.message_timeout = millis(2000);
  config.tcp.max_consecutive_rtos = 2;
  Rig rig(config);
  rig.broker.start();
  rig.source.start();
  rig.producer.start();
  rig.sim.at(millis(50), [&] {
    rig.link.a_to_b.set_loss_model(std::make_shared<net::BernoulliLoss>(1.0));
  });
  rig.sim.at(seconds(6), [&] {
    rig.link.a_to_b.set_loss_model(std::make_shared<net::NoLoss>());
  });
  while (!rig.producer.finished() && rig.sim.now() < seconds(600)) {
    rig.sim.run(rig.sim.now() + millis(200));
  }
  rig.sim.run(rig.sim.now() + seconds(10));
  EXPECT_GT(rig.producer.stats().connection_resets, 0u);
  EXPECT_LT(rig.log().log_end_offset(), 500);  // Some messages vanished.
}

TEST(Producer, ReconfigureChangesBatching) {
  RigConfig config;
  config.messages = 2000;
  config.source_interval = millis(1);
  config.producer.batch_size = 1;
  Rig rig(config);
  rig.broker.start();
  rig.source.start();
  rig.producer.start();
  rig.sim.at(millis(900), [&] {
    rig.producer.reconfigure(/*batch_size=*/20, /*linger=*/millis(20),
                             /*poll_interval=*/0,
                             /*message_timeout=*/seconds(300));
  });
  while (!rig.producer.finished() && rig.sim.now() < seconds(300)) {
    rig.sim.run(rig.sim.now() + millis(100));
  }
  rig.sim.run(rig.sim.now() + seconds(10));
  const auto& s = rig.producer.stats();
  EXPECT_EQ(s.records_sent, 2000u);
  EXPECT_LT(s.requests_sent, 1900u);  // Batching kicked in mid-run.
}

TEST(Producer, FinishedCallbackFires) {
  Rig rig(RigConfig{.messages = 100});
  bool finished = false;
  rig.producer.on_finished = [&] { finished = true; };
  rig.run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(rig.producer.finished());
}

TEST(Producer, SemanticsPresets) {
  const auto amo = ProducerConfig::at_most_once();
  EXPECT_EQ(amo.acks, Acks::kNone);
  EXPECT_EQ(amo.retries, 0);
  EXPECT_EQ(amo.admission, AdmissionPolicy::kFlood);

  const auto alo = ProducerConfig::at_least_once();
  EXPECT_EQ(alo.acks, Acks::kLeader);
  EXPECT_GT(alo.retries, 0);
  EXPECT_EQ(alo.admission, AdmissionPolicy::kAckPaced);

  const auto eos = ProducerConfig::exactly_once();
  EXPECT_EQ(eos.acks, Acks::kAll);
  EXPECT_TRUE(eos.enable_idempotence);

  EXPECT_STREQ(to_string(DeliverySemantics::kAtMostOnce), "at-most-once");
  EXPECT_STREQ(to_string(DeliverySemantics::kAtLeastOnce), "at-least-once");
  EXPECT_STREQ(to_string(DeliverySemantics::kExactlyOnce), "exactly-once");
}

}  // namespace
}  // namespace ks::kafka
