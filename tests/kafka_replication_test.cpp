// Replication, ISR tracking and leader failover: the broker-fault ablation
// the paper leaves to future work. These tests exercise the full stack —
// follower fetch sessions over simulated inter-broker links, high-watermark
// commit, min.insync gating, clean and unclean elections, producer and
// consumer failover — and pin the safety teeth both ways: acks=all +
// min.insync>=2 + clean elections never lose acked data under single-broker
// fail-stop, while acks=1 and unclean elections demonstrably do.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kafka/broker.hpp"
#include "kafka/cluster.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"
#include "kafka/source.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"
#include "tcp/endpoint.hpp"

namespace ks::kafka {
namespace {

// ---------------------------------------------------------------------------
// Retry backoff: capped exponential with decorrelated jitter.

TEST(RetryBackoff, StaysWithinBoundsGrowsAndIsDeterministic) {
  const Duration base = millis(50);
  const Duration cap = seconds(2);
  std::uint64_t state = 42;
  Duration prev = 0;
  Duration largest = 0;
  for (int i = 0; i < 64; ++i) {
    const Duration b = next_retry_backoff(state, base, prev, cap);
    EXPECT_GE(b, base);
    EXPECT_LE(b, cap);
    // Decorrelated jitter: never more than 3x the previous wait.
    if (prev > 0) {
      EXPECT_LE(b, std::max(base, prev * 3));
    }
    prev = b;
    largest = std::max(largest, b);
  }
  // The exponential part must actually grow toward the cap.
  EXPECT_GT(largest, base * 4);

  // Same seed => same sequence (sim determinism depends on it).
  std::uint64_t s1 = 7, s2 = 7;
  Duration p1 = 0, p2 = 0;
  for (int i = 0; i < 16; ++i) {
    p1 = next_retry_backoff(s1, base, p1, cap);
    p2 = next_retry_backoff(s2, base, p2, cap);
    EXPECT_EQ(p1, p2);
  }
}

// ---------------------------------------------------------------------------
// Cluster rig: replicated cluster + per-broker producer links (+ optional
// consumer links), all over lossless LAN-grade connections so every effect
// in these tests comes from broker faults, not the network.

struct ClusterRigConfig {
  std::uint64_t seed = 1;
  std::uint64_t messages = 1500;
  Bytes message_size = 100;
  int replication_factor = 3;
  int min_insync = 2;
  bool unclean = false;
  Duration leader_detect_delay = millis(100);
  ProducerConfig producer = ProducerConfig::exactly_once();
  Broker::Config broker{};
  bool with_consumer = false;
  Consumer::Config consumer{};
};

struct ClusterRig {
  explicit ClusterRig(ClusterRigConfig config)
      : cfg(std::move(config)), sim(cfg.seed), cluster(sim, cluster_config()) {
    cluster.create_topic("t", 1);
    partition = cluster.partition_id("t", 0);
    const int n = cluster.num_brokers();
    for (int i = 0; i < n; ++i) {
      add_connection("prod", i);
      cluster.broker(i).attach(conns.back()->server);
    }
    Source::Config sc;
    sc.total_messages = cfg.messages;
    sc.message_size = cfg.message_size;
    sc.emit_interval = 0;
    source = std::make_unique<Source>(sim, sc);
    producer = std::make_unique<Producer>(sim, cfg.producer, conns[0]->client,
                                          *source, partition);
    std::vector<tcp::Endpoint*> eps;
    for (int i = 0; i < n; ++i) eps.push_back(&conns[static_cast<std::size_t>(i)]->client);
    producer->enable_failover(eps, [this](std::int32_t p) {
      return cluster.current_leader(p);
    });
    acked.assign(cfg.messages, 0);
    producer->on_record_acked = [this](const Record& r) {
      if (r.key < acked.size()) acked[r.key] = 1;
    };
    if (cfg.with_consumer) {
      std::vector<tcp::Endpoint*> ceps;
      for (int i = 0; i < n; ++i) {
        add_connection("cons", i);
        cluster.broker(i).attach(conns.back()->server);
        ceps.push_back(&conns.back()->client);
      }
      consumer = std::make_unique<Consumer>(sim, cfg.consumer, *ceps[0],
                                            partition);
      consumer->enable_failover(std::move(ceps), [this](std::int32_t p) {
        return cluster.current_leader(p);
      });
    }
  }

  Cluster::Config cluster_config() const {
    Cluster::Config c;
    c.num_brokers = 3;
    c.broker = cfg.broker;
    c.replication_factor = cfg.replication_factor;
    c.min_insync_replicas = cfg.min_insync;
    c.unclean_leader_election = cfg.unclean;
    c.leader_detect_delay = cfg.leader_detect_delay;
    return c;
  }

  void add_connection(const std::string& role, int broker) {
    links.push_back(std::make_unique<net::DuplexLink>(
        sim, net::Link::Config{.bandwidth_bps = 100e6},
        std::make_shared<net::ConstantDelay>(micros(300)),
        std::make_shared<net::NoLoss>(),
        std::make_shared<net::ConstantDelay>(micros(300)),
        std::make_shared<net::NoLoss>(), role + std::to_string(broker)));
    conns.push_back(std::make_unique<tcp::Pair>(
        sim, tcp::Config{}, *links.back(),
        role + "-conn" + std::to_string(broker)));
  }

  void run(Duration cap = seconds(120)) {
    cluster.start();
    source->start();
    producer->start();
    if (consumer) consumer->start();
    while (!producer->finished() && sim.now() < cap) {
      sim.run(sim.now() + millis(100));
    }
    sim.run(sim.now() + seconds(10));  // Drain elections + follower catch-up.
  }

  std::uint64_t acked_count() const {
    std::uint64_t n = 0;
    for (auto a : acked) n += a;
    return n;
  }

  /// Acked keys absent from every committed log.
  std::uint64_t acked_lost() const {
    const auto counts = cluster.committed_key_counts("t", cfg.messages);
    std::uint64_t lost = 0;
    for (std::uint64_t k = 0; k < cfg.messages; ++k) {
      if (acked[k] && counts[k] == 0) ++lost;
    }
    return lost;
  }

  ClusterRigConfig cfg;
  sim::Simulation sim;
  Cluster cluster;
  std::int32_t partition = 0;
  std::vector<std::unique_ptr<net::DuplexLink>> links;
  std::vector<std::unique_ptr<tcp::Pair>> conns;
  std::unique_ptr<Source> source;
  std::unique_ptr<Producer> producer;
  std::unique_ptr<Consumer> consumer;
  std::vector<std::uint8_t> acked;
};

// ---------------------------------------------------------------------------

TEST(Replication, FollowersReplicateAndHighWatermarkAdvances) {
  ClusterRigConfig cfg;
  cfg.messages = 800;
  cfg.producer = ProducerConfig::exactly_once();
  ClusterRig rig(cfg);
  rig.run();

  ASSERT_TRUE(rig.producer->finished());
  EXPECT_EQ(rig.cluster.stats().elections, 0u);

  // Every replica holds the full log and the commit point reached the end.
  const auto* leader_log = rig.cluster.broker(0).partition(rig.partition);
  ASSERT_NE(leader_log, nullptr);
  const std::int64_t leo = leader_log->log_end_offset();
  EXPECT_EQ(leo, static_cast<std::int64_t>(cfg.messages));
  EXPECT_EQ(leader_log->high_watermark(), leo);
  for (int b = 1; b < rig.cluster.num_brokers(); ++b) {
    const auto* log = rig.cluster.broker(b).partition(rig.partition);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->log_end_offset(), leo) << "broker " << b;
    EXPECT_GT(rig.cluster.broker(b).stats().replica_records_appended, 0u);
  }
  EXPECT_EQ(rig.cluster.replica_prefix_violations(), 0u);

  // Census agrees: everything delivered exactly once, nothing acked lost.
  const auto census = rig.cluster.census("t", cfg.messages);
  EXPECT_EQ(census.delivered, cfg.messages);
  EXPECT_EQ(census.lost, 0u);
  EXPECT_EQ(rig.acked_lost(), 0u);
  EXPECT_EQ(rig.acked_count(), cfg.messages);
}

TEST(Replication, IsrEvictionOnFailureAndRejoinAfterCatchUp) {
  ClusterRigConfig cfg;
  cfg.messages = 2500;
  ClusterRig rig(cfg);
  // Fail a follower mid-run, bring it back later: it must be evicted from
  // the ISR (so the high watermark keeps advancing on the survivors) and
  // re-admitted once its fetch session catches back up.
  rig.sim.at(millis(60), [&] { rig.cluster.fail_broker(2); });
  rig.sim.at(millis(400), [&] { rig.cluster.resume_broker(2); });
  rig.run();

  ASSERT_TRUE(rig.producer->finished());
  EXPECT_EQ(rig.cluster.stats().elections, 0u);  // Leader never failed.
  EXPECT_GE(rig.cluster.stats().isr_shrinks, 1u);
  EXPECT_GE(rig.cluster.stats().isr_expands, 1u);
  EXPECT_EQ(rig.cluster.broker(0).isr_of(rig.partition).size(), 3u);
  EXPECT_EQ(rig.acked_lost(), 0u);
  EXPECT_EQ(rig.cluster.replica_prefix_violations(), 0u);
  // The rejoined follower holds the full log again.
  EXPECT_EQ(rig.cluster.broker(2).partition(rig.partition)->log_end_offset(),
            rig.cluster.broker(0).partition(rig.partition)->log_end_offset());
}

TEST(Replication, MinInsyncGateRejectsProduceWhenIsrTooSmall) {
  ClusterRigConfig cfg;
  cfg.messages = 2000;
  cfg.min_insync = 3;  // Every replica must be in sync.
  cfg.producer = ProducerConfig::exactly_once();
  cfg.producer.message_timeout = seconds(2);
  cfg.producer.retries = 3;
  ClusterRig rig(cfg);
  rig.sim.at(millis(50), [&] { rig.cluster.fail_broker(2); });  // For good.
  rig.run();

  // Once the ISR shrank below min.insync the leader rejects instead of
  // appending; the producer sees the error and eventually gives up.
  EXPECT_GT(rig.cluster.broker(0).stats().not_enough_replicas, 0u);
  EXPECT_GT(rig.producer->stats().not_enough_replicas_errors, 0u);
  EXPECT_GT(rig.producer->stats().records_failed, 0u);
  // Durability contract intact: whatever WAS acked is committed.
  EXPECT_EQ(rig.acked_lost(), 0u);
}

TEST(Replication, CleanElectionAfterLeaderFailStopLosesNoAckedData) {
  ClusterRigConfig cfg;
  cfg.messages = 2500;
  cfg.min_insync = 2;
  cfg.producer = ProducerConfig::exactly_once();
  cfg.producer.request_timeout = millis(300);
  cfg.producer.message_timeout = seconds(30);
  cfg.producer.retries = 50;
  ClusterRig rig(cfg);
  rig.sim.at(millis(80), [&] { rig.cluster.fail_broker(0); });
  rig.run();

  ASSERT_TRUE(rig.producer->finished());
  EXPECT_GE(rig.cluster.stats().elections, 1u);
  EXPECT_EQ(rig.cluster.stats().unclean_elections, 0u);
  EXPECT_GE(rig.producer->stats().failovers, 1u);
  // The headline invariant: acks=all + min.insync=2 + clean election =>
  // no acked record is lost to a single broker fail-stop.
  EXPECT_EQ(rig.acked_lost(), 0u);
  EXPECT_EQ(rig.cluster.stats().committed_regressions, 0u);
  EXPECT_EQ(rig.cluster.replica_prefix_violations(), 0u);
  // And the run made real progress through the new leader.
  EXPECT_GT(rig.acked_count(), cfg.messages / 2);
}

TEST(Replication, Acks1LeaderFailStopLosesAckedRecords) {
  ClusterRigConfig cfg;
  cfg.messages = 2500;
  cfg.min_insync = 1;
  cfg.producer = ProducerConfig::at_least_once();  // acks=1.
  cfg.producer.request_timeout = millis(300);
  cfg.producer.message_timeout = seconds(30);
  cfg.producer.retries = 50;
  // Widen the ack-to-replication window: followers fetch lazily, so the
  // leader acks well ahead of its followers...
  cfg.broker.replica_fetch_interval = millis(80);
  cfg.broker.replica_lag_time_max = seconds(60);  // ...without ISR eviction.
  ClusterRig rig(cfg);
  rig.sim.at(millis(150), [&] { rig.cluster.fail_broker(0); });
  rig.run();

  ASSERT_TRUE(rig.producer->finished());
  EXPECT_GE(rig.cluster.stats().elections, 1u);
  EXPECT_EQ(rig.cluster.stats().unclean_elections, 0u);
  // The teeth, other direction: acks=1 acknowledges before replication, so
  // a leader fail-stop strands acked records in the dead leader's log.
  EXPECT_GT(rig.acked_lost(), 0u);
}

TEST(Replication, UncleanElectionRegressesCommitsAndTruncatesConsumer) {
  ClusterRigConfig cfg;
  cfg.messages = 3000;
  cfg.min_insync = 1;  // Keep acking while the ISR shrinks to the leader.
  cfg.unclean = true;
  cfg.producer = ProducerConfig::exactly_once();
  cfg.producer.request_timeout = millis(300);
  cfg.producer.message_timeout = seconds(30);
  cfg.producer.retries = 50;
  cfg.with_consumer = true;
  cfg.consumer.fetch_timeout = millis(200);
  cfg.consumer.max_fetch_retries = 100;
  ClusterRig rig(cfg);
  // Kill both followers early: the ISR collapses to the leader, which keeps
  // committing alone (min.insync=1). Then the leader dies and a stale
  // follower comes back: no ISR survivor exists, so the unclean election
  // installs it — and everything the lone leader committed is gone.
  rig.sim.at(millis(60), [&] { rig.cluster.fail_broker(1); });
  rig.sim.at(millis(60), [&] { rig.cluster.fail_broker(2); });
  rig.sim.at(millis(500), [&] { rig.cluster.fail_broker(0); });
  rig.sim.at(millis(520), [&] { rig.cluster.resume_broker(1); });
  rig.run();

  EXPECT_GE(rig.cluster.stats().elections, 1u);
  EXPECT_GE(rig.cluster.stats().unclean_elections, 1u);
  EXPECT_GE(rig.cluster.stats().committed_regressions, 1u);
  // Acked (and committed!) records are lost — the unclean hazard.
  EXPECT_GT(rig.acked_lost(), 0u);
  // The consumer that was reading past the stale leader's log end had to
  // truncate its position back to the new high watermark.
  ASSERT_NE(rig.consumer, nullptr);
  EXPECT_GE(rig.consumer->stats().failovers, 1u);
  EXPECT_GE(rig.consumer->stats().offset_truncations, 1u);
  EXPECT_FALSE(rig.consumer->stalled());
}

// ---------------------------------------------------------------------------
// Census correctness: only committed (below-high-watermark) records count.

TEST(Replication, CensusCountsOnlyCommittedRecords) {
  sim::Simulation sim(1);
  Cluster::Config cc;
  cc.num_brokers = 3;
  cc.replication_factor = 2;
  Cluster cluster(sim, cc);
  cluster.create_topic("t", 1);
  const std::int32_t p = cluster.partition_id("t", 0);

  // Detach the follower so the high watermark stops advancing.
  cluster.fail_broker(1);
  sim.run(sim.now() + millis(500));

  auto* log = cluster.broker(0).partition(p);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->replicated());
  std::vector<Record> batch;
  for (Key k = 0; k < 10; ++k) {
    batch.push_back(Record{.key = k, .value_size = 10, .created_at = 0});
  }
  log->append(batch, sim.now());
  ASSERT_EQ(log->log_end_offset(), 10);

  // Nothing committed yet: every key is "lost" to a reader.
  auto census = cluster.census("t", 10);
  EXPECT_EQ(census.delivered, 0u);
  EXPECT_EQ(census.lost, 10u);
  EXPECT_EQ(census.appended_records, 0u);

  // Commit half: exactly those keys become visible.
  log->advance_high_watermark(5);
  census = cluster.census("t", 10);
  EXPECT_EQ(census.delivered, 5u);
  EXPECT_EQ(census.lost, 5u);
  EXPECT_EQ(census.appended_records, 5u);
}

// ---------------------------------------------------------------------------
// Consumer bounded fetch re-issue: backoff between retries, stall (not
// spin) once the budget is exhausted against a dead broker.

TEST(ConsumerRetries, BoundedReissueThenStallAgainstDeadBroker) {
  sim::Simulation sim(3);
  Broker broker(sim, Broker::Config{});
  broker.create_partition(0);
  net::DuplexLink link(sim, {.bandwidth_bps = 100e6},
                       std::make_shared<net::ConstantDelay>(millis(1)),
                       std::make_shared<net::NoLoss>(),
                       std::make_shared<net::ConstantDelay>(millis(1)),
                       std::make_shared<net::NoLoss>(), "cons");
  tcp::Pair conn(sim, tcp::Config{}, link, "cons");
  broker.attach(conn.server);

  Consumer::Config cc;
  cc.fetch_timeout = millis(100);
  cc.max_fetch_retries = 3;
  cc.fetch_retry_backoff_max = millis(400);
  Consumer consumer(sim, cc, conn.client, 0);
  consumer.start();
  sim.at(millis(5), [&] { broker.fail(); });  // Serves nothing, ever.
  sim.run(seconds(30));

  EXPECT_TRUE(consumer.stalled());
  // Exactly budget+1 timeouts fired (the last one trips the stall)...
  EXPECT_EQ(consumer.stats().fetch_retries, 4u);
  // ...and with backoff the attempts stretched well past 4 * fetch_timeout.
  EXPECT_GE(sim.now(), millis(30));
}

TEST(ConsumerRetries, RetryBudgetResetsOnProgress) {
  sim::Simulation sim(4);
  Broker broker(sim, Broker::Config{});
  auto& log = broker.create_partition(0);
  net::DuplexLink link(sim, {.bandwidth_bps = 100e6},
                       std::make_shared<net::ConstantDelay>(millis(1)),
                       std::make_shared<net::NoLoss>(),
                       std::make_shared<net::ConstantDelay>(millis(1)),
                       std::make_shared<net::NoLoss>(), "cons2");
  tcp::Pair conn(sim, tcp::Config{}, link, "cons2");
  broker.attach(conn.server);
  std::vector<Record> batch{Record{.key = 1, .value_size = 10}};
  log.append(batch, 0);

  Consumer::Config cc;
  cc.fetch_timeout = millis(100);
  cc.max_fetch_retries = 3;
  Consumer consumer(sim, cc, conn.client, 0);
  consumer.start();
  // Outage shorter than the budget: retries, then resumes when the broker
  // returns — the budget resets on the first served response.
  sim.at(millis(5), [&] { broker.fail(); });
  sim.at(millis(250), [&] { broker.resume(); });
  sim.run(seconds(10));

  EXPECT_FALSE(consumer.stalled());
  EXPECT_GE(consumer.stats().fetch_retries, 1u);
  EXPECT_EQ(consumer.stats().records, 1u);
  EXPECT_EQ(consumer.position(), 1);
}

}  // namespace
}  // namespace ks::kafka
