// Unit tests for the durable-storage layer: CRC32C vectors, the
// flush.messages / flush.ms discipline vs. OS-cache-only writeback,
// power-loss suffix drops, torn tails, latent corruption, the recovery
// scan, and dedup/high-watermark rebuild — plus crash-restart replay
// determinism of a full disk-fault experiment.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "chaos/generator.hpp"
#include "kafka/log.hpp"
#include "kafka/storage.hpp"
#include "testbed/experiment.hpp"

namespace ks::kafka {
namespace {

std::vector<Record> records(Key first, int count, Bytes size = 100) {
  std::vector<Record> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Record{first + static_cast<Key>(i), size, 0, 0});
  }
  return out;
}

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 / iSCSI).
  const char* check = "123456789";
  EXPECT_EQ(crc32c(check, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(check, 0), 0u);
  // 32 zero bytes: another published CRC32C vector.
  const unsigned char zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, 32), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto one_shot = crc32c(data.data(), data.size());
  const auto first = crc32c(data.data(), 10);
  EXPECT_EQ(crc32c(data.data() + 10, data.size() - 10, first), one_shot);
  EXPECT_NE(one_shot, crc32c(data.data(), data.size() - 1));
}

TEST(Storage, OsCacheOnlyAppendsCostNothing) {
  StorageDevice device{StorageConfig{}};
  PartitionLog log;
  log.enable_storage(&device);
  for (int i = 0; i < 10; ++i) {
    log.append(records(static_cast<Key>(i) * 3, 3), millis(i));
    EXPECT_EQ(log.take_flush_cost(), 0);
  }
  EXPECT_EQ(device.stats().flushes, 0u);
  EXPECT_GT(log.storage()->dirty_bytes(), 0);
  EXPECT_EQ(log.storage()->end_offset(), 30);
}

TEST(Storage, FlushMessagesPolicyFlushesEveryBatch) {
  StorageConfig config;
  config.flush_messages = 1;
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  for (int i = 0; i < 5; ++i) {
    log.append(records(static_cast<Key>(i), 1), millis(i));
    EXPECT_GT(log.take_flush_cost(), 0);
    EXPECT_EQ(log.storage()->dirty_bytes(), 0);
  }
  EXPECT_EQ(device.stats().flushes, 5u);
  EXPECT_GT(device.stats().flushed_bytes, 0);
}

TEST(Storage, FlushMessagesThresholdAccumulates) {
  StorageConfig config;
  config.flush_messages = 8;
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  // 3 + 3 records: below the threshold, everything stays dirty.
  log.append(records(0, 3), 0);
  log.append(records(3, 3), 0);
  EXPECT_EQ(log.take_flush_cost(), 0);
  EXPECT_EQ(device.stats().flushes, 0u);
  // The batch crossing 8 records since the last flush triggers the sync.
  log.append(records(6, 3), 0);
  EXPECT_GT(log.take_flush_cost(), 0);
  EXPECT_EQ(device.stats().flushes, 1u);
  EXPECT_EQ(log.storage()->dirty_bytes(), 0);
}

TEST(Storage, FlushIntervalPolicyFiresOnElapsedTime) {
  StorageConfig config;
  config.flush_interval = millis(10);
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 2), millis(1));
  EXPECT_EQ(log.take_flush_cost(), 0);  // 1ms since the (t=0) epoch flush.
  log.append(records(2, 2), millis(12));
  EXPECT_GT(log.take_flush_cost(), 0);  // 12ms >= 10ms: policy fires.
  EXPECT_EQ(device.stats().flushes, 1u);
}

TEST(Storage, StalledDeviceMultipliesFlushCost) {
  StorageConfig config;
  config.flush_messages = 1;
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 1), millis(1));
  const Duration normal = log.take_flush_cost();
  device.stall(millis(100));
  log.append(records(1, 1), millis(2));
  const Duration stalled = log.take_flush_cost();
  EXPECT_GT(stalled, normal);
  EXPECT_EQ(device.stats().stalled_flushes, 1u);
  // Past the stall window the cost drops back.
  log.append(records(2, 1), millis(200));
  EXPECT_LT(log.take_flush_cost(), stalled);
}

TEST(Storage, SegmentsRollAtConfiguredSize) {
  StorageConfig config;
  config.segment_bytes = 300;  // ~2 records of 100B + overhead per segment.
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  for (int i = 0; i < 8; ++i) {
    log.append(records(static_cast<Key>(i), 1), 0);
  }
  EXPECT_GT(log.storage()->segment_count(), 2u);
  // Offsets stay continuous across segment boundaries.
  EXPECT_EQ(log.storage()->end_offset(), 8);
}

TEST(Storage, PowerLossDropsUnflushedSuffixOnly) {
  StorageConfig config;
  config.flush_messages = 1;
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 4), millis(1));  // Flushed (policy fires).
  log.take_flush_cost();
  // Disable the sync policy for the suffix by writing fast batches the
  // policy already covered: switch to a second log with OS-cache-only.
  StorageDevice cache_device{StorageConfig{}};
  PartitionLog cache_log;
  cache_log.enable_storage(&cache_device);
  cache_log.append(records(0, 4), millis(1));
  cache_log.append(records(4, 3), millis(2));

  // The fsynced log survives a crash whole; the cached one loses all.
  EXPECT_EQ(log.crash_power_loss(millis(3), /*torn_write=*/false), 0);
  EXPECT_EQ(cache_log.crash_power_loss(millis(3), false), 7);

  RecoveryResult rr;
  log.recover_from_storage(millis(4), &rr);
  EXPECT_EQ(rr.recovered_records, 4);
  EXPECT_EQ(rr.discarded_records, 0);
  EXPECT_EQ(log.verify_recovery(), 0u);
  EXPECT_EQ(log.log_end_offset(), 4);

  RecoveryResult cr;
  cache_log.recover_from_storage(millis(4), &cr);
  EXPECT_EQ(cr.recovered_records, 0);
  EXPECT_EQ(cr.discarded_records, 7);
  EXPECT_EQ(cache_log.verify_recovery(), 0u);
}

TEST(Storage, OsWritebackMakesOldBatchesDurable) {
  StorageConfig config;  // Default writeback window: 400ms.
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 5), millis(10));   // Old enough to be written back.
  log.append(records(5, 5), millis(600));  // Still dirty at the crash.
  EXPECT_EQ(log.crash_power_loss(millis(700), false), 5);
  RecoveryResult rr;
  log.recover_from_storage(millis(701), &rr);
  EXPECT_EQ(rr.recovered_records, 5);
  EXPECT_EQ(rr.discarded_records, 5);
  EXPECT_EQ(log.log_end_offset(), 5);
  EXPECT_EQ(log.entries()[4].key, 4u);
  EXPECT_EQ(log.verify_recovery(), 0u);
}

TEST(Storage, TornTailFailsCrcAndIsTruncated) {
  StorageDevice device{StorageConfig{}};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 6), millis(10));   // Written back by the crash.
  log.append(records(6, 4), millis(600));  // Torn mid-write.
  const auto dropped = log.crash_power_loss(millis(700), /*torn_write=*/true);
  // Half the torn batch's records survive on disk (but fail CRC); the
  // other half never made it.
  EXPECT_EQ(dropped, 2);
  RecoveryResult rr;
  log.recover_from_storage(millis(701), &rr);
  EXPECT_TRUE(rr.torn_tail);
  EXPECT_EQ(rr.torn_records, 2);
  EXPECT_EQ(rr.recovered_records, 6);
  EXPECT_EQ(rr.discarded_records, 4);  // Dropped half + torn half.
  EXPECT_EQ(log.log_end_offset(), 6);
  EXPECT_EQ(log.verify_recovery(), 0u);
}

TEST(Storage, LatentCorruptionSurfacesAtRecoveryScan) {
  StorageConfig config;
  config.flush_messages = 1;  // Everything durable: only the flip can hurt.
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  for (int i = 0; i < 6; ++i) {
    log.append(records(static_cast<Key>(i) * 2, 2), millis(i));
    log.take_flush_cost();
  }
  ASSERT_TRUE(log.storage()->corrupt_batch(0x12345));
  EXPECT_EQ(log.crash_power_loss(millis(10), false), 0);
  RecoveryResult rr;
  log.recover_from_storage(millis(11), &rr);
  EXPECT_EQ(rr.corrupt_batches, 1);
  EXPECT_LT(rr.recovered_records, 12);
  EXPECT_EQ(rr.recovered_records + rr.discarded_records, 12);
  EXPECT_EQ(log.verify_recovery(), 0u);
  // The scan truncates at the first mismatch: the surviving prefix is
  // exactly the batches before the corrupt one.
  EXPECT_EQ(log.log_end_offset(), rr.recovered_end);
  EXPECT_EQ(rr.recovered_records % 2, 0);
}

TEST(Storage, RecoveryRebuildsProducerDedupState) {
  StorageConfig config;
  config.flush_messages = 1;
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 3), millis(1), /*producer_id=*/7,
             /*base_sequence=*/0);
  log.append(records(3, 2), millis(2), 7, 3);
  log.append(records(5, 2), millis(3), 9, 0);
  log.crash_power_loss(millis(4), false);
  EXPECT_EQ(log.last_sequence_of(7), -1);  // Volatile state is gone...
  RecoveryResult rr;
  log.recover_from_storage(millis(5), &rr);
  EXPECT_EQ(rr.recovered_records, 7);
  EXPECT_EQ(log.last_sequence_of(7), 4);   // ...and rebuilt by the scan.
  EXPECT_EQ(log.last_sequence_of(9), 1);
  // The rebuilt dedup state still rejects a pre-crash retry.
  auto retry = log.append(records(3, 2), millis(6), 7, 3);
  EXPECT_TRUE(retry.deduplicated);
  EXPECT_EQ(log.log_end_offset(), 7);
}

TEST(Storage, RecoveryRestoresHighWatermarkCheckpoint) {
  StorageConfig config;
  config.flush_messages = 1;
  StorageDevice device{config};
  PartitionLog log;
  log.enable_storage(&device);
  log.enable_replication();
  // Each append piggybacks the HW at the time of the write: grow the log,
  // advancing the HW behind the end like a real follower set would.
  log.append(records(0, 4), millis(1));
  log.advance_high_watermark(4);
  log.append(records(4, 4), millis(2));  // Checkpoints hw=4.
  log.crash_power_loss(millis(3), false);
  RecoveryResult rr;
  log.recover_from_storage(millis(4), &rr);
  EXPECT_EQ(rr.recovered_records, 8);
  EXPECT_EQ(rr.recovered_hw, 4);
  // The recovered log trusts only the checkpointed commit point; the tail
  // above it is refetched from the new leader.
  EXPECT_EQ(log.high_watermark(), 4);
  EXPECT_EQ(log.verify_recovery(), 0u);
}

TEST(Storage, TruncationKeepsStorageInSyncAndCorruptionDetectable) {
  StorageDevice device{StorageConfig{}};
  PartitionLog log;
  log.enable_storage(&device);
  log.append(records(0, 4), millis(1));
  log.append(records(4, 4), millis(2));
  // Corrupt the first (soon straddled) batch, then truncate through it:
  // the rewrite must keep the corruption CRC-detectable. pick=2 lands on
  // batch index 0 of the two stored batches.
  ASSERT_TRUE(log.storage()->corrupt_batch(2));
  log.truncate_to(2);
  EXPECT_EQ(log.storage()->end_offset(), 2);
  log.append(records(2, 2), millis(3));
  log.crash_power_loss(millis(500) + millis(2), false);
  RecoveryResult rr;
  log.recover_from_storage(millis(503), &rr);
  EXPECT_EQ(rr.corrupt_batches, 1);
  EXPECT_EQ(rr.recovered_records, 0);  // Corruption sat in the first batch.
  EXPECT_EQ(log.verify_recovery(), 0u);
}

// A full disk-fault experiment (power loss, hard restart, recovery scan)
// must replay byte-identically from its seed — the crash-recovery path
// draws no hidden randomness and leaves no cross-run state.
TEST(Storage, CrashRestartReplayIsDeterministic) {
  // Find a disk-profile scenario whose schedule actually cuts power.
  testbed::Scenario scenario;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    const auto cs =
        chaos::generate_scenario(seed, chaos::Profile::kDiskFaults);
    for (const auto& f : cs.scenario.faults) {
      if (f.kind == testbed::FaultAction::Kind::kPowerLoss) {
        scenario = cs.scenario;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  const auto first = testbed::run_experiment(scenario);
  const auto second = testbed::run_experiment(scenario);
  ASSERT_GT(first.power_losses, 0u);
  EXPECT_EQ(first.report.canonical_json(), second.report.canonical_json());
}

}  // namespace
}  // namespace ks::kafka
