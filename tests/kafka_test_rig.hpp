// Shared assembly for Kafka-layer tests: one broker, one producer link,
// optional consumer link, no broker regimes unless requested.
#pragma once

#include <memory>

#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"
#include "kafka/source.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"
#include "tcp/endpoint.hpp"

namespace ks::kafka::testutil {

struct RigConfig {
  std::uint64_t seed = 1;
  std::uint64_t messages = 1000;
  Bytes message_size = 100;
  double loss = 0.0;
  Duration delay = millis(1);
  Duration source_interval = 0;  ///< 0 = on-demand.
  Broker::Config broker{};
  ProducerConfig producer = ProducerConfig::at_least_once();
  tcp::Config tcp{};
};

struct Rig {
  explicit Rig(RigConfig config)
      : cfg(std::move(config)),
        sim(cfg.seed),
        broker(sim, cfg.broker),
        link(sim, {.bandwidth_bps = 100e6},
             std::make_shared<net::ConstantDelay>(cfg.delay),
             cfg.loss > 0 ? std::shared_ptr<net::LossModel>(
                                std::make_shared<net::BernoulliLoss>(cfg.loss))
                          : std::make_shared<net::NoLoss>(),
             std::make_shared<net::ConstantDelay>(cfg.delay),
             std::make_shared<net::NoLoss>(), "rig"),
        conn(sim, cfg.tcp, link, "rig"),
        source(sim, {.total_messages = cfg.messages,
                     .message_size = cfg.message_size,
                     .emit_interval = cfg.source_interval}),
        producer(sim, cfg.producer, conn.client, source, /*partition=*/0) {
    broker.create_partition(0);
    broker.attach(conn.server);
  }

  /// Start everything and run until the producer finishes (or `cap`).
  void run(Duration cap = seconds(600)) {
    broker.start();
    source.start();
    producer.start();
    while (!producer.finished() && sim.now() < cap) {
      sim.run(sim.now() + millis(200));
    }
    sim.run(sim.now() + seconds(10));  // Drain.
  }

  const PartitionLog& log() { return *broker.partition(0); }

  RigConfig cfg;
  sim::Simulation sim;
  Broker broker;
  net::DuplexLink link;
  tcp::Pair conn;
  Source source;
  Producer producer;
};

}  // namespace ks::kafka::testutil
