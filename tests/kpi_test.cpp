// KPI-layer tests: weighted KPI, performance model, ANN-backed predictor
// and the dynamic configurator.
#include <gtest/gtest.h>

#include "kpi/dynamic_config.hpp"
#include "kpi/kpi.hpp"
#include "kpi/perf_model.hpp"
#include "kpi/predictor.hpp"
#include "testbed/workloads.hpp"

namespace ks::kpi {
namespace {

TEST(Kpi, WeightsSumToOneByDefault) {
  EXPECT_NEAR(KpiWeights::defaults().sum(), 1.0, 1e-12);
}

TEST(Kpi, FormulaMatchesEquation2) {
  // gamma = w1*phi + w2*mu + w3*(1-Pl) + w4*(1-Pd).
  const KpiWeights w{0.3, 0.3, 0.3, 0.1};
  EXPECT_NEAR(weighted_kpi(0.5, 0.8, 0.2, 0.1, w),
              0.3 * 0.5 + 0.3 * 0.8 + 0.3 * 0.8 + 0.1 * 0.9, 1e-12);
}

TEST(Kpi, PerfectSystemScoresOne) {
  EXPECT_NEAR(weighted_kpi(1.0, 1.0, 0.0, 0.0, KpiWeights::defaults()), 1.0,
              1e-12);
}

TEST(Kpi, ClampsOutOfRangeInputs) {
  const auto w = KpiWeights::defaults();
  EXPECT_NEAR(weighted_kpi(2.0, -1.0, 1.5, -0.2, w),
              weighted_kpi(1.0, 0.0, 1.0, 0.0, w), 1e-12);
}

TEST(Kpi, FromArray) {
  const auto w = KpiWeights::from_array({0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(w.w_phi, 0.1);
  EXPECT_DOUBLE_EQ(w.w_dup, 0.4);
}

TEST(PerfModel, ServiceRateFallsWithMessageSize) {
  const auto small = predict_performance(50, 1, 0);
  const auto large = predict_performance(1000, 1, 0);
  EXPECT_GT(small.mu_msgs_per_s, large.mu_msgs_per_s);
  EXPECT_GT(small.mu_normalized, large.mu_normalized);
  EXPECT_LE(small.mu_normalized, 1.0);
}

TEST(PerfModel, PollIntervalCapsRate) {
  const auto paced = predict_performance(100, 1, millis(10));
  EXPECT_NEAR(paced.mu_msgs_per_s, 100.0, 1.0);
}

TEST(PerfModel, BatchingAmortisesOverheadInPhi) {
  // Same message rate, fewer request headers per message => lower offered
  // load => lower phi.
  const auto b1 = predict_performance(100, 1, 0);
  const auto b10 = predict_performance(100, 10, 0);
  EXPECT_GT(b1.phi, b10.phi);
}

TEST(PerfModel, PhiBounded) {
  const auto p = predict_performance(10000, 1, 0);
  EXPECT_GE(p.phi, 0.0);
  EXPECT_LE(p.phi, 1.0);
}

TEST(Predictor, NormalCaseRouting) {
  testbed::Scenario sc;
  sc.packet_loss = 0.0;
  sc.network_delay = millis(100);
  EXPECT_TRUE(ReliabilityPredictor::is_normal_case(sc));
  sc.packet_loss = 0.1;
  EXPECT_FALSE(ReliabilityPredictor::is_normal_case(sc));
  sc.packet_loss = 0.0;
  sc.network_delay = millis(300);
  EXPECT_FALSE(ReliabilityPredictor::is_normal_case(sc));
}

TEST(Predictor, UntrainedThrows) {
  ReliabilityPredictor predictor;
  EXPECT_FALSE(predictor.trained());
  EXPECT_THROW(predictor.predict(testbed::Scenario{}), std::logic_error);
}

// Build synthetic datasets with a known functional form and check the
// predictor learns it well enough to rank configurations.
class TrainedPredictor : public ::testing::Test {
 protected:
  static ann::Dataset synth_normal() {
    ann::Dataset ds;
    // P_l falls with T_o (column 1 of normal features) and B, P_d = 0.
    for (double s : {1000.0, 5000.0}) {
      for (double t_o = 250; t_o <= 2000; t_o += 250) {
        for (double delta : {0.0, 10.0, 50.0}) {
          for (double sem : {0.0, 1.0}) {
            for (double b : {1.0, 4.0, 10.0}) {
              const double pl =
                  std::max(0.0, 0.5 - t_o / 5000.0 - delta / 200.0 -
                                     0.1 * sem - 0.01 * b);
              ds.add({s, t_o, delta, sem, b}, {pl, 0.0});
            }
          }
        }
      }
    }
    ds.finalize();
    return ds;
  }

  static ann::Dataset synth_abnormal() {
    ann::Dataset ds;
    // P_l rises with L, falls with B and M; P_d falls with B.
    for (double m : {50.0, 200.0, 600.0, 1000.0}) {
      for (double d : {20.0, 100.0}) {
        for (double l = 0.0; l <= 0.5; l += 0.05) {
          for (double sem : {0.0, 1.0}) {
            for (double b : {1.0, 2.0, 5.0, 10.0}) {
              const double pl = std::clamp(
                  l * 2.0 - 0.04 * b - m / 5000.0 - 0.05 * sem, 0.0, 1.0);
              const double pd = sem * std::max(0.0, 0.05 - 0.004 * b);
              ds.add({m, d, l, sem, b}, {pl, pd});
            }
          }
        }
      }
    }
    ds.finalize();
    return ds;
  }

  static ReliabilityPredictor& predictor() {
    static ReliabilityPredictor* instance = [] {
      auto* p = new ReliabilityPredictor();
      ann::TrainConfig tc;
      tc.epochs = 150;
      tc.learning_rate = 0.5;
      tc.batch_size = 16;
      Rng rng(42);
      p->train(synth_normal(), synth_abnormal(), tc, rng);
      return p;
    }();
    return *instance;
  }
};

TEST_F(TrainedPredictor, AccuracyMeetsPaperTarget) {
  ann::TrainConfig tc;
  tc.epochs = 150;
  tc.learning_rate = 0.5;
  tc.batch_size = 16;
  Rng rng(43);
  ReliabilityPredictor p;
  const auto result = p.train(synth_normal(), synth_abnormal(), tc, rng);
  EXPECT_LT(result.normal_mae, 0.02);
  EXPECT_LT(result.abnormal_mae, 0.02);
}

TEST_F(TrainedPredictor, PredictsMonotoneInLoss) {
  testbed::Scenario lo, hi;
  lo.packet_loss = 0.05;
  hi.packet_loss = 0.45;
  lo.network_delay = hi.network_delay = millis(50);
  EXPECT_LT(predictor().predict(lo).p_loss, predictor().predict(hi).p_loss);
}

TEST_F(TrainedPredictor, PredictsBatchingBenefit) {
  testbed::Scenario b1, b10;
  b1.packet_loss = b10.packet_loss = 0.3;
  b1.batch_size = 1;
  b10.batch_size = 10;
  EXPECT_GT(predictor().predict(b1).p_loss,
            predictor().predict(b10).p_loss);
}

TEST_F(TrainedPredictor, SaveLoadRoundTrip) {
  const std::string dir = ::testing::TempDir();
  predictor().save(dir);
  ReliabilityPredictor loaded;
  loaded.load(dir);
  testbed::Scenario sc;
  sc.packet_loss = 0.25;
  const auto a = predictor().predict(sc);
  const auto b = loaded.predict(sc);
  EXPECT_NEAR(a.p_loss, b.p_loss, 1e-9);
  EXPECT_NEAR(a.p_duplicate, b.p_duplicate, 1e-9);
}

TEST_F(TrainedPredictor, ConfiguratorPrefersBatchingUnderLoss) {
  DynamicConfigurator configurator(predictor(), KpiWeights::defaults(),
                                   /*gamma_requirement=*/0.99);
  const auto workload = testbed::web_access_records();
  const auto calm = configurator.choose(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(20), 0.0);
  const auto stormy = configurator.choose(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(20), 0.35);
  EXPECT_GT(stormy.batch_size, calm.batch_size);
}

TEST_F(TrainedPredictor, ConfiguratorImprovesGamma) {
  DynamicConfigurator configurator(predictor(), KpiWeights::defaults(), 0.99);
  const auto workload = testbed::game_traffic();
  const DynamicParams start{1, 0, millis(1500)};
  const auto chosen = configurator.choose(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(30), 0.3,
      start);
  const double g0 = configurator.predicted_gamma(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(30), 0.3,
      start);
  const double g1 = configurator.predicted_gamma(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(30), 0.3,
      chosen);
  EXPECT_GE(g1, g0);
}

TEST_F(TrainedPredictor, ScheduleCoversTrace) {
  DynamicConfigurator configurator(predictor(), KpiWeights::defaults(), 0.9);
  net::TraceGenConfig tconf;
  tconf.duration = seconds(180);
  Rng rng(44);
  const auto trace = net::generate_trace(tconf, rng);
  const auto schedule = configurator.build_schedule(
      trace, seconds(60), testbed::web_access_records(),
      kafka::DeliverySemantics::kAtLeastOnce);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].start, 0);
  EXPECT_EQ(schedule[1].start, seconds(60));
  for (const auto& e : schedule) {
    EXPECT_GE(e.params.batch_size, 1);
    EXPECT_GE(e.predicted_gamma, 0.0);
    EXPECT_LE(e.predicted_gamma, 1.0);
  }
}

TEST_F(TrainedPredictor, DynamicRunSmoke) {
  net::TraceGenConfig tconf;
  tconf.duration = seconds(30);
  Rng rng(45);
  const auto trace = net::generate_trace(tconf, rng);
  auto workload = testbed::game_traffic();
  workload.emit_interval = millis(2);  // Keep the run small.
  const auto result = run_dynamic_experiment(
      trace, workload, kafka::DeliverySemantics::kAtLeastOnce, nullptr,
      KpiWeights::defaults(), 7);
  EXPECT_EQ(result.census.total_keys,
            static_cast<std::uint64_t>(seconds(30) / millis(2)));
  EXPECT_GE(result.overall_loss_rate, 0.0);
  EXPECT_LE(result.overall_loss_rate, 1.0);
  EXPECT_GT(result.measured_gamma, 0.0);
}

}  // namespace
}  // namespace ks::kpi
