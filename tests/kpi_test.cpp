// KPI-layer tests: weighted KPI, performance model, ANN-backed predictor,
// the dynamic configurator and the online controller stack.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "kpi/condition_estimator.hpp"
#include "kpi/dynamic_config.hpp"
#include "kpi/kpi.hpp"
#include "kpi/online_controller.hpp"
#include "kpi/perf_model.hpp"
#include "kpi/predictor.hpp"
#include "testbed/workloads.hpp"

namespace ks::kpi {
namespace {

TEST(Kpi, WeightsSumToOneByDefault) {
  EXPECT_NEAR(KpiWeights::defaults().sum(), 1.0, 1e-12);
}

TEST(Kpi, FormulaMatchesEquation2) {
  // gamma = w1*phi + w2*mu + w3*(1-Pl) + w4*(1-Pd).
  const KpiWeights w{0.3, 0.3, 0.3, 0.1};
  EXPECT_NEAR(weighted_kpi(0.5, 0.8, 0.2, 0.1, w),
              0.3 * 0.5 + 0.3 * 0.8 + 0.3 * 0.8 + 0.1 * 0.9, 1e-12);
}

TEST(Kpi, PerfectSystemScoresOne) {
  EXPECT_NEAR(weighted_kpi(1.0, 1.0, 0.0, 0.0, KpiWeights::defaults()), 1.0,
              1e-12);
}

TEST(Kpi, ClampsOutOfRangeInputs) {
  const auto w = KpiWeights::defaults();
  EXPECT_NEAR(weighted_kpi(2.0, -1.0, 1.5, -0.2, w),
              weighted_kpi(1.0, 0.0, 1.0, 0.0, w), 1e-12);
}

TEST(Kpi, FromArray) {
  const auto w = KpiWeights::from_array({0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(w.w_phi, 0.1);
  EXPECT_DOUBLE_EQ(w.w_dup, 0.4);
}

TEST(PerfModel, ServiceRateFallsWithMessageSize) {
  const auto small = predict_performance(50, 1, 0);
  const auto large = predict_performance(1000, 1, 0);
  EXPECT_GT(small.mu_msgs_per_s, large.mu_msgs_per_s);
  EXPECT_GT(small.mu_normalized, large.mu_normalized);
  EXPECT_LE(small.mu_normalized, 1.0);
}

TEST(PerfModel, PollIntervalCapsRate) {
  const auto paced = predict_performance(100, 1, millis(10));
  EXPECT_NEAR(paced.mu_msgs_per_s, 100.0, 1.0);
}

TEST(PerfModel, BatchingAmortisesOverheadInPhi) {
  // Same message rate, fewer request headers per message => lower offered
  // load => lower phi.
  const auto b1 = predict_performance(100, 1, 0);
  const auto b10 = predict_performance(100, 10, 0);
  EXPECT_GT(b1.phi, b10.phi);
}

TEST(PerfModel, PhiBounded) {
  const auto p = predict_performance(10000, 1, 0);
  EXPECT_GE(p.phi, 0.0);
  EXPECT_LE(p.phi, 1.0);
}

TEST(Predictor, NormalCaseRouting) {
  testbed::Scenario sc;
  sc.packet_loss = 0.0;
  sc.network_delay = millis(100);
  EXPECT_TRUE(ReliabilityPredictor::is_normal_case(sc));
  sc.packet_loss = 0.1;
  EXPECT_FALSE(ReliabilityPredictor::is_normal_case(sc));
  sc.packet_loss = 0.0;
  sc.network_delay = millis(300);
  EXPECT_FALSE(ReliabilityPredictor::is_normal_case(sc));
}

TEST(Predictor, UntrainedThrows) {
  ReliabilityPredictor predictor;
  EXPECT_FALSE(predictor.trained());
  EXPECT_THROW(predictor.predict(testbed::Scenario{}), std::logic_error);
}

// Build synthetic datasets with a known functional form and check the
// predictor learns it well enough to rank configurations.
class TrainedPredictor : public ::testing::Test {
 protected:
  static ann::Dataset synth_normal() {
    ann::Dataset ds;
    // P_l falls with T_o (column 1 of normal features) and B, P_d = 0.
    for (double s : {1000.0, 5000.0}) {
      for (double t_o = 250; t_o <= 2000; t_o += 250) {
        for (double delta : {0.0, 10.0, 50.0}) {
          for (double sem : {0.0, 1.0}) {
            for (double b : {1.0, 4.0, 10.0}) {
              const double pl =
                  std::max(0.0, 0.5 - t_o / 5000.0 - delta / 200.0 -
                                     0.1 * sem - 0.01 * b);
              ds.add({s, t_o, delta, sem, b}, {pl, 0.0});
            }
          }
        }
      }
    }
    ds.finalize();
    return ds;
  }

  static ann::Dataset synth_abnormal() {
    ann::Dataset ds;
    // P_l rises with L, falls with B and M; P_d falls with B.
    for (double m : {50.0, 200.0, 600.0, 1000.0}) {
      for (double d : {20.0, 100.0}) {
        for (double l = 0.0; l <= 0.5; l += 0.05) {
          for (double sem : {0.0, 1.0}) {
            for (double b : {1.0, 2.0, 5.0, 10.0}) {
              const double pl = std::clamp(
                  l * 2.0 - 0.04 * b - m / 5000.0 - 0.05 * sem, 0.0, 1.0);
              const double pd = sem * std::max(0.0, 0.05 - 0.004 * b);
              ds.add({m, d, l, sem, b}, {pl, pd});
            }
          }
        }
      }
    }
    ds.finalize();
    return ds;
  }

  static ReliabilityPredictor& predictor() {
    static ReliabilityPredictor* instance = [] {
      auto* p = new ReliabilityPredictor();
      ann::TrainConfig tc;
      tc.epochs = 150;
      tc.learning_rate = 0.5;
      tc.batch_size = 16;
      Rng rng(42);
      p->train(synth_normal(), synth_abnormal(), tc, rng);
      return p;
    }();
    return *instance;
  }
};

TEST_F(TrainedPredictor, AccuracyMeetsPaperTarget) {
  ann::TrainConfig tc;
  tc.epochs = 150;
  tc.learning_rate = 0.5;
  tc.batch_size = 16;
  Rng rng(43);
  ReliabilityPredictor p;
  const auto result = p.train(synth_normal(), synth_abnormal(), tc, rng);
  EXPECT_LT(result.normal_mae, 0.02);
  EXPECT_LT(result.abnormal_mae, 0.02);
}

TEST_F(TrainedPredictor, PredictsMonotoneInLoss) {
  testbed::Scenario lo, hi;
  lo.packet_loss = 0.05;
  hi.packet_loss = 0.45;
  lo.network_delay = hi.network_delay = millis(50);
  EXPECT_LT(predictor().predict(lo).p_loss, predictor().predict(hi).p_loss);
}

TEST_F(TrainedPredictor, PredictsBatchingBenefit) {
  testbed::Scenario b1, b10;
  b1.packet_loss = b10.packet_loss = 0.3;
  b1.batch_size = 1;
  b10.batch_size = 10;
  EXPECT_GT(predictor().predict(b1).p_loss,
            predictor().predict(b10).p_loss);
}

TEST_F(TrainedPredictor, SaveLoadRoundTrip) {
  const std::string dir = ::testing::TempDir();
  predictor().save(dir);
  ReliabilityPredictor loaded;
  loaded.load(dir);
  testbed::Scenario sc;
  sc.packet_loss = 0.25;
  const auto a = predictor().predict(sc);
  const auto b = loaded.predict(sc);
  EXPECT_NEAR(a.p_loss, b.p_loss, 1e-9);
  EXPECT_NEAR(a.p_duplicate, b.p_duplicate, 1e-9);
}

TEST_F(TrainedPredictor, ConfiguratorPrefersBatchingUnderLoss) {
  DynamicConfigurator configurator(predictor(), KpiWeights::defaults(),
                                   /*gamma_requirement=*/0.99);
  const auto workload = testbed::web_access_records();
  const auto calm = configurator.choose(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(20), 0.0);
  const auto stormy = configurator.choose(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(20), 0.35);
  EXPECT_GT(stormy.batch_size, calm.batch_size);
}

TEST_F(TrainedPredictor, ConfiguratorImprovesGamma) {
  DynamicConfigurator configurator(predictor(), KpiWeights::defaults(), 0.99);
  const auto workload = testbed::game_traffic();
  const DynamicParams start{1, 0, millis(1500)};
  const auto chosen = configurator.choose(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(30), 0.3,
      start);
  const double g0 = configurator.predicted_gamma(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(30), 0.3,
      start);
  const double g1 = configurator.predicted_gamma(
      workload, kafka::DeliverySemantics::kAtLeastOnce, millis(30), 0.3,
      chosen);
  EXPECT_GE(g1, g0);
}

TEST_F(TrainedPredictor, ScheduleCoversTrace) {
  DynamicConfigurator configurator(predictor(), KpiWeights::defaults(), 0.9);
  net::TraceGenConfig tconf;
  tconf.duration = seconds(180);
  Rng rng(44);
  const auto trace = net::generate_trace(tconf, rng);
  const auto schedule = configurator.build_schedule(
      trace, seconds(60), testbed::web_access_records(),
      kafka::DeliverySemantics::kAtLeastOnce);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].start, 0);
  EXPECT_EQ(schedule[1].start, seconds(60));
  for (const auto& e : schedule) {
    EXPECT_GE(e.params.batch_size, 1);
    EXPECT_GE(e.predicted_gamma, 0.0);
    EXPECT_LE(e.predicted_gamma, 1.0);
  }
}

// --- Condition estimator -------------------------------------------------

/// Telemetry snapshot with cumulative transport counters.
testbed::AdaptiveTelemetry snapshot(std::uint64_t data_segments,
                                    std::uint64_t retransmissions,
                                    Duration srtt) {
  testbed::AdaptiveTelemetry t;
  t.segments_sent = data_segments + retransmissions;
  t.data_segments_sent = data_segments;
  t.retransmissions = retransmissions;
  t.smoothed_rtt = srtt;
  return t;
}

TEST(ConditionEstimator, GatesWhileTheWindowIsThin) {
  ConditionEstimator est;  // min_segments = 40 by default.
  const auto first = est.update(seconds(1), snapshot(0, 0, 0));
  EXPECT_FALSE(first.confident);
  const auto second = est.update(seconds(2), snapshot(10, 1, millis(3)));
  EXPECT_FALSE(second.confident);  // Only 10 segments in the window.
  EXPECT_EQ(second.window_segments, 10u);
}

TEST(ConditionEstimator, EstimatesLossFromRetransmitDeltas) {
  ConditionEstimator est;
  est.update(seconds(1), snapshot(0, 0, 0));
  const auto e = est.update(seconds(2), snapshot(200, 60, millis(3)));
  ASSERT_TRUE(e.confident);
  EXPECT_EQ(e.window_segments, 200u);
  EXPECT_NEAR(e.loss, 60.0 / 200.0, 1e-12);
}

TEST(ConditionEstimator, LossFloorRoutesCleanRunsToTheNormalModel) {
  // A stray retransmit (1/1000 < loss_floor 0.005) must read as L == 0 so
  // the predictor's normal-network model (which requires L == 0) is used.
  ConditionEstimator est;
  est.update(seconds(1), snapshot(0, 0, 0));
  const auto e = est.update(seconds(2), snapshot(1000, 1, millis(3)));
  ASSERT_TRUE(e.confident);
  EXPECT_EQ(e.loss, 0.0);
}

TEST(ConditionEstimator, ReadsInjectedDelayOffTheSmoothedRtt) {
  ConditionEstimator est;
  const Duration base = est.config().base_rtt;
  const Duration injected = millis(120);  // One-way, so RTT grows by 2x.
  est.update(seconds(1), snapshot(0, 0, 0));
  const auto e =
      est.update(seconds(2), snapshot(100, 0, base + 2 * injected));
  ASSERT_TRUE(e.confident);
  EXPECT_EQ(e.delay, injected);
  EXPECT_EQ(e.loss, 0.0);
}

TEST(ConditionEstimator, HorizonSlidesOldTrafficOut) {
  ConditionEstimatorConfig cfg;
  cfg.horizon = seconds(4);
  ConditionEstimator est(cfg);
  est.update(seconds(1), snapshot(0, 0, 0));
  est.update(seconds(2), snapshot(500, 250, millis(3)));  // Stormy burst.
  // 10 seconds later the burst has left the window: only the calm tail
  // (the last two snapshots) backs the estimate.
  est.update(seconds(11), snapshot(900, 250, millis(3)));
  const auto e = est.update(seconds(12), snapshot(1000, 250, millis(3)));
  ASSERT_TRUE(e.confident);
  EXPECT_EQ(e.window_segments, 100u);
  EXPECT_EQ(e.loss, 0.0);
}

// --- Single-step move clamp ----------------------------------------------

TEST(DynamicConfig, ClampSingleStepMovesOneGridStepPerAxis) {
  const DynamicParams from{1, 0, millis(1500)};
  const DynamicParams target{10, millis(90), millis(5000)};
  const auto clamped = clamp_single_step(from, target);
  EXPECT_EQ(clamped.batch_size, 2);                   // 1 -> 2 on the grid.
  EXPECT_EQ(clamped.poll_interval, millis(1));        // 0 -> 1 ms.
  EXPECT_EQ(clamped.message_timeout, millis(2000));   // 1500 -> 2000 ms.
}

TEST(DynamicConfig, ClampSingleStepIsIdempotentAtTheTarget) {
  const DynamicParams at{5, millis(20), millis(1000)};
  const auto clamped = clamp_single_step(at, at);
  EXPECT_EQ(clamped.batch_size, 5);
  EXPECT_EQ(clamped.poll_interval, millis(20));
  EXPECT_EQ(clamped.message_timeout, millis(1000));
}

TEST(DynamicConfig, ClampSingleStepStepsDownToo) {
  const DynamicParams from{10, millis(90), millis(5000)};
  const DynamicParams target{1, 0, millis(500)};
  const auto clamped = clamp_single_step(from, target);
  EXPECT_EQ(clamped.batch_size, 8);
  EXPECT_EQ(clamped.poll_interval, millis(50));
  EXPECT_EQ(clamped.message_timeout, millis(3000));
}

// --- Online controller ---------------------------------------------------

/// Telemetry for a stormy network: ~30% of data segments retransmitted,
/// SRTT showing ~100 ms of injected one-way delay.
testbed::AdaptiveTelemetry stormy(std::uint64_t tick_no,
                                  const ConditionEstimatorConfig& est) {
  auto t = snapshot(200 * tick_no, 60 * tick_no,
                    est.base_rtt + 2 * millis(100));
  t.batch_size = 1;
  t.poll_interval = 0;
  t.message_timeout = millis(1500);
  return t;
}

TEST_F(TrainedPredictor, OnlineControllerGatesThenActsWithSingleStepMoves) {
  OnlineController::Config cfg;
  cfg.cooldown = seconds(3);
  OnlineController controller(predictor(), testbed::game_traffic(),
                              kafka::DeliverySemantics::kAtLeastOnce,
                              KpiWeights::defaults(),
                              /*gamma_requirement=*/0.99, cfg);
  // Tick 1: first sample, no deltas yet -> gated.
  auto d = controller.tick(seconds(1), stormy(0, cfg.estimator));
  EXPECT_FALSE(d.evaluated);
  EXPECT_FALSE(d.apply);
  // Tick 2: 200 segments at 30% retransmit -> confident, stormy network.
  d = controller.tick(seconds(2), stormy(1, cfg.estimator));
  ASSERT_TRUE(d.evaluated);
  EXPECT_NEAR(d.est_loss, 0.3, 1e-9);
  ASSERT_TRUE(d.apply);  // Batching should look much better than B=1.
  EXPECT_GT(d.chosen_gamma, d.current_gamma);
  // The applied move is at most one grid step from the live params.
  EXPECT_EQ(d.batch_size, 2);
  EXPECT_LE(d.poll_interval, millis(1));
  EXPECT_GE(d.message_timeout, millis(1000));
  EXPECT_LE(d.message_timeout, millis(2000));
}

TEST_F(TrainedPredictor, OnlineControllerHonorsTheCooldown) {
  OnlineController::Config cfg;
  cfg.cooldown = seconds(5);
  OnlineController controller(predictor(), testbed::game_traffic(),
                              kafka::DeliverySemantics::kAtLeastOnce,
                              KpiWeights::defaults(), 0.99, cfg);
  controller.tick(seconds(1), stormy(0, cfg.estimator));
  const auto applied = controller.tick(seconds(2), stormy(1, cfg.estimator));
  ASSERT_TRUE(applied.apply);
  // Within the cooldown nothing is even evaluated...
  const auto held = controller.tick(seconds(3), stormy(2, cfg.estimator));
  EXPECT_FALSE(held.evaluated);
  EXPECT_FALSE(held.apply);
  EXPECT_EQ(held.note, "cooldown");
  // ...and once it expires the controller may move again.
  const auto later = controller.tick(seconds(8), stormy(7, cfg.estimator));
  EXPECT_TRUE(later.evaluated);
}

TEST_F(TrainedPredictor, OnlineControllerDecisionsReplayDeterministically) {
  OnlineController::Config cfg;
  cfg.cooldown = seconds(3);
  const auto run = [&](std::vector<std::string>& notes) {
    OnlineController controller(predictor(), testbed::game_traffic(),
                                kafka::DeliverySemantics::kAtLeastOnce,
                                KpiWeights::defaults(), 0.99, cfg);
    for (std::uint64_t i = 0; i < 10; ++i) {
      notes.push_back(
          controller.tick(seconds(1 + i), stormy(i, cfg.estimator)).note);
    }
  };
  std::vector<std::string> a, b;
  run(a);
  run(b);
  EXPECT_EQ(a, b);
}

TEST(OnlineController, SyntheticFactoryBuildsFreshDriversPerRun) {
  testbed::Scenario sc;
  sc.adaptive_interval = millis(500);
  sc.adaptive_cooldown = seconds(2);
  const auto factory = synthetic_adaptive_factory();
  const auto driver_a = factory(sc);
  const auto driver_b = factory(sc);
  ASSERT_NE(driver_a, nullptr);
  ASSERT_NE(driver_b, nullptr);
  EXPECT_NE(driver_a.get(), driver_b.get());
  EXPECT_EQ(driver_a->interval(), millis(500));
  EXPECT_EQ(driver_a->cooldown(), seconds(2));
}

// --- Predictor persistence hardening -------------------------------------

TEST(Predictor, LoadFromMissingDirectoryLeavesItUntrained) {
  ReliabilityPredictor p;
  EXPECT_THROW(p.load("/nonexistent/predictor/dir"), std::runtime_error);
  EXPECT_FALSE(p.trained());
}

TEST_F(TrainedPredictor, LoadFailureIsAtomic) {
  const std::string dir = ::testing::TempDir() + "/corrupt_predictor";
  std::filesystem::create_directories(dir);
  predictor().save(dir);
  // Truncate one of the four artifacts mid-stream.
  {
    std::ofstream out(dir + "/abnormal.net", std::ios::trunc);
    out << "KSNN v1\n";  // Header only: layer payload missing.
  }
  // A fresh predictor must refuse the half-readable set outright...
  ReliabilityPredictor fresh;
  EXPECT_THROW(fresh.load(dir), std::runtime_error);
  EXPECT_FALSE(fresh.trained());
  // ...and an already-trained one must keep its old weights (normal.net in
  // the corrupt set parses fine — a non-atomic load would adopt it).
  const std::string intact = ::testing::TempDir() + "/intact_predictor";
  std::filesystem::create_directories(intact);
  predictor().save(intact);
  ReliabilityPredictor survivor;
  survivor.load(intact);
  ASSERT_TRUE(survivor.trained());
  testbed::Scenario sc;
  sc.packet_loss = 0.25;
  const auto before = survivor.predict(sc);
  EXPECT_THROW(survivor.load(dir), std::runtime_error);
  EXPECT_TRUE(survivor.trained());
  const auto after = survivor.predict(sc);
  EXPECT_NEAR(before.p_loss, after.p_loss, 0.0);
  EXPECT_NEAR(before.p_duplicate, after.p_duplicate, 0.0);
}

TEST_F(TrainedPredictor, DynamicRunSmoke) {
  net::TraceGenConfig tconf;
  tconf.duration = seconds(30);
  Rng rng(45);
  const auto trace = net::generate_trace(tconf, rng);
  auto workload = testbed::game_traffic();
  workload.emit_interval = millis(2);  // Keep the run small.
  const auto result = run_dynamic_experiment(
      trace, workload, kafka::DeliverySemantics::kAtLeastOnce, nullptr,
      KpiWeights::defaults(), 7);
  EXPECT_EQ(result.census.total_keys,
            static_cast<std::uint64_t>(seconds(30) / millis(2)));
  EXPECT_GE(result.overall_loss_rate, 0.0);
  EXPECT_LE(result.overall_loss_rate, 1.0);
  EXPECT_GT(result.measured_gamma, 0.0);
}

}  // namespace
}  // namespace ks::kpi
