// Metric naming lint: every registered metric must follow the repo's
// Prometheus-style conventions, so dashboards and the bench diff tooling
// can rely on suffixes to infer semantics:
//
//  - lower_snake_case, starts with a letter, no double or trailing
//    underscores;
//  - counters end in `_total`;
//  - histograms end in a unit suffix (`_us`, `_ms`, `_bytes`, `_kb`);
//  - gauges carry no `_total` (they are not monotone);
//  - unit tokens (`us`, `ms`, `bytes`, `kb`) appear only as the final
//    token, or immediately before a final `total` — "tcp_acked_bytes_total"
//    not "tcp_bytes_acked_total". Ratio metrics (containing `_per_`) are
//    exempt from placement, e.g. sim_wall_us_per_sim_s.
//
// The lint runs over the real registry contents of both an ungrouped and
// a replicated grouped experiment, so every layer's registrations are
// covered, and it pins the names that were renamed to fix historical
// drift.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "testbed/experiment.hpp"

namespace ks::testbed {
namespace {

const std::set<std::string> kUnitTokens = {"us", "ms", "bytes", "kb"};

std::vector<std::string> tokens_of(const std::string& name) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char c : name) {
    if (c == '_') {
      tokens.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  tokens.push_back(cur);
  return tokens;
}

void lint(const std::string& name, obs::MetricKind kind,
          std::vector<std::string>& problems) {
  const auto flag = [&](const std::string& why) {
    problems.push_back(name + ": " + why);
  };

  if (name.empty() || name.front() < 'a' || name.front() > 'z') {
    flag("must start with a lowercase letter");
    return;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) {
      flag("contains a character outside [a-z0-9_]");
      return;
    }
  }
  if (name.find("__") != std::string::npos) flag("double underscore");
  if (name.back() == '_') flag("trailing underscore");

  const auto tokens = tokens_of(name);
  const auto ends_with = [&](const std::string& suffix) {
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };

  switch (kind) {
    case obs::MetricKind::kCounter:
      if (!ends_with("_total")) flag("counter must end in _total");
      break;
    case obs::MetricKind::kGauge:
      if (ends_with("_total")) flag("gauge must not end in _total");
      break;
    case obs::MetricKind::kHistogram: {
      bool unit_suffix = false;
      for (const auto& unit : kUnitTokens) {
        if (ends_with("_" + unit)) unit_suffix = true;
      }
      if (!unit_suffix) flag("histogram must end in a unit suffix");
      break;
    }
  }

  // Unit-token placement (the drift the renames fixed): a unit token in
  // the middle of a name reads as a subject, not a unit.
  if (name.find("_per_") == std::string::npos) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (kUnitTokens.count(tokens[i]) == 0) continue;
      const bool final_token = i == tokens.size() - 1;
      const bool before_final_total =
          i == tokens.size() - 2 && tokens.back() == "total";
      if (!final_token && !before_final_total) {
        flag("unit token '" + tokens[i] +
             "' must be the final token (or precede a final _total)");
      }
    }
  }
}

TEST(MetricNaming, EveryRegisteredMetricFollowsTheConventions) {
  // Two runs between them register every layer: plain pipeline, then a
  // replicated cluster with a consumer group (elections, ISR, group lag).
  std::vector<obs::RunReport::Metric> all;
  {
    Scenario sc;
    sc.num_messages = 50;
    sc.seed = 3;
    const auto r = run_experiment(sc);
    all.insert(all.end(), r.report.metrics.begin(), r.report.metrics.end());
  }
  {
    Scenario sc;
    sc.num_messages = 50;
    sc.seed = 3;
    sc.replication_factor = 3;
    sc.partitions = 2;
    sc.group_size = 2;
    const auto r = run_experiment(sc);
    all.insert(all.end(), r.report.metrics.begin(), r.report.metrics.end());
  }
  ASSERT_FALSE(all.empty());

  std::set<std::string> seen;
  std::vector<std::string> problems;
  for (const auto& m : all) {
    if (!seen.insert(m.name).second) continue;
    lint(m.name, m.kind, problems);
  }
  for (const auto& p : problems) ADD_FAILURE() << p;

  // Pin the renames that fixed historical unit-placement drift.
  EXPECT_TRUE(seen.count("tcp_acked_bytes_total"));
  EXPECT_TRUE(seen.count("tcp_outstanding_bytes"));
  EXPECT_TRUE(seen.count("link_delivered_bytes_total"));
  EXPECT_TRUE(seen.count("kafka_broker_appended_bytes_total"));
  EXPECT_FALSE(seen.count("tcp_bytes_acked_total"));
  EXPECT_FALSE(seen.count("link_bytes_delivered_total"));
  EXPECT_FALSE(seen.count("kafka_broker_bytes_appended_total"));
}

TEST(MetricNaming, LintFlagsEachDriftClass) {
  std::vector<std::string> problems;
  lint("tcp_bytes_acked_total", obs::MetricKind::kCounter, problems);
  lint("events", obs::MetricKind::kCounter, problems);
  lint("queue_depth_total", obs::MetricKind::kGauge, problems);
  lint("append_latency", obs::MetricKind::kHistogram, problems);
  lint("bad__name_total", obs::MetricKind::kCounter, problems);
  EXPECT_EQ(problems.size(), 5u);
  // And the exemptions hold.
  problems.clear();
  lint("sim_wall_us_per_sim_s", obs::MetricKind::kGauge, problems);
  lint("sim_wall_time_us_total", obs::MetricKind::kCounter, problems);
  lint("kafka_broker_hw_lag_us", obs::MetricKind::kHistogram, problems);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

}  // namespace
}  // namespace ks::testbed
