// Unit tests for net/: loss models, delay models, links, NetEm, traces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/delay_model.hpp"
#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "net/netem.hpp"
#include "net/trace.hpp"
#include "sim/simulation.hpp"

namespace ks::net {
namespace {

TEST(LossModels, NoLossNeverDrops) {
  NoLoss model;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.drop(0, rng));
  EXPECT_EQ(model.stationary_rate(), 0.0);
}

TEST(LossModels, BernoulliEmpiricalRate) {
  BernoulliLoss model(0.19);
  Rng rng(2);
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) drops += model.drop(0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.19, 0.01);
  EXPECT_DOUBLE_EQ(model.stationary_rate(), 0.19);
}

TEST(LossModels, BernoulliSetRate) {
  BernoulliLoss model(0.0);
  model.set_rate(1.0);
  Rng rng(3);
  EXPECT_TRUE(model.drop(0, rng));
}

TEST(LossModels, GilbertElliottStationaryFormula) {
  GilbertElliottLoss::Params p;
  p.p_good_to_bad = 0.02;
  p.p_bad_to_good = 0.08;
  p.loss_good = 0.001;
  p.loss_bad = 0.4;
  GilbertElliottLoss model(p);
  // pi_bad = 0.02/0.10 = 0.2 => rate = 0.8*0.001 + 0.2*0.4 = 0.0808.
  EXPECT_NEAR(model.stationary_rate(), 0.0808, 1e-9);

  Rng rng(4);
  int drops = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) drops += model.drop(0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.0808, 0.005);
}

TEST(LossModels, GilbertElliottIsBursty) {
  // Consecutive-drop probability should exceed the square of the marginal
  // rate by a wide margin — the defining property vs Bernoulli.
  GilbertElliottLoss::Params p;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.10;
  p.loss_good = 0.0;
  p.loss_bad = 0.5;
  GilbertElliottLoss model(p);
  Rng rng(5);
  int drops = 0, pairs = 0;
  bool prev = false;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const bool d = model.drop(0, rng);
    drops += d ? 1 : 0;
    if (d && prev) ++pairs;
    prev = d;
  }
  const double rate = static_cast<double>(drops) / n;
  const double pair_rate = static_cast<double>(pairs) / n;
  EXPECT_GT(pair_rate, 2.0 * rate * rate);
}

TEST(LossModels, TraceLossPiecewise) {
  TraceLoss model({{0, 0.0}, {seconds(10), 1.0}});
  EXPECT_EQ(model.rate_at(seconds(5)), 0.0);
  EXPECT_EQ(model.rate_at(seconds(10)), 1.0);
  EXPECT_EQ(model.rate_at(seconds(99)), 1.0);
  Rng rng(6);
  EXPECT_FALSE(model.drop(seconds(1), rng));
  EXPECT_TRUE(model.drop(seconds(20), rng));
}

TEST(DelayModels, Constant) {
  ConstantDelay model(millis(5));
  Rng rng(7);
  EXPECT_EQ(model.sample(0, rng), millis(5));
  EXPECT_EQ(model.mean(), millis(5));
  model.set_delay(millis(9));
  EXPECT_EQ(model.sample(0, rng), millis(9));
}

TEST(DelayModels, UniformWithinBounds) {
  UniformDelay model(millis(10), millis(3));
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const Duration d = model.sample(0, rng);
    EXPECT_GE(d, millis(7));
    EXPECT_LE(d, millis(13));
  }
}

TEST(DelayModels, UniformFloorsAtZero) {
  UniformDelay model(millis(1), millis(5));
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(model.sample(0, rng), 0);
}

TEST(DelayModels, ParetoBounds) {
  ParetoDelay model(millis(10), 1.5, millis(200));
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const Duration d = model.sample(0, rng);
    EXPECT_GE(d, millis(10));
    EXPECT_LE(d, millis(200));
  }
}

TEST(DelayModels, ParetoMeanFormula) {
  ParetoDelay model(millis(10), 3.0, seconds(100));
  EXPECT_EQ(model.mean(), millis(15));  // alpha*xm/(alpha-1).
  ParetoDelay heavy(millis(10), 0.9, millis(300));
  EXPECT_EQ(heavy.mean(), millis(300));  // Diverging mean reports the cap.
}

TEST(DelayModels, TraceDelayBase) {
  TraceDelay model({{0, millis(10)}, {seconds(5), millis(50)}}, 0.0);
  Rng rng(11);
  EXPECT_EQ(model.sample(seconds(1), rng), millis(10));
  EXPECT_EQ(model.sample(seconds(6), rng), millis(50));
  EXPECT_EQ(model.mean(), millis(30));
}

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
};

Packet make_packet(Bytes size) {
  Packet p;
  p.size = size;
  p.payload = std::make_shared<int>(0);
  return p;
}

TEST_F(LinkTest, DeliversAfterDelay) {
  Link link(sim_, {.bandwidth_bps = 0},
            std::make_shared<ConstantDelay>(millis(5)),
            std::make_shared<NoLoss>());
  TimePoint arrival = -1;
  link.set_receiver([&](Packet) { arrival = sim_.now(); });
  link.send(make_packet(100));
  sim_.run();
  EXPECT_EQ(arrival, millis(5));
  EXPECT_EQ(link.stats().packets_delivered, 1u);
}

TEST_F(LinkTest, SerializationTimeFromBandwidth) {
  // 1000 bytes at 1 Mbit/s = 8 ms on the wire.
  Link link(sim_, {.bandwidth_bps = 1e6}, std::make_shared<ConstantDelay>(0),
            std::make_shared<NoLoss>());
  TimePoint arrival = -1;
  link.set_receiver([&](Packet) { arrival = sim_.now(); });
  link.send(make_packet(1000));
  sim_.run();
  EXPECT_EQ(arrival, millis(8));
}

TEST_F(LinkTest, FifoUnderBackToBackSends) {
  Link link(sim_, {.bandwidth_bps = 1e6}, std::make_shared<ConstantDelay>(0),
            std::make_shared<NoLoss>());
  std::vector<std::uint64_t> ids;
  link.set_receiver([&](Packet p) { ids.push_back(p.id); });
  for (int i = 0; i < 5; ++i) link.send(make_packet(500));
  sim_.run();
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

TEST_F(LinkTest, QueueOverflowDrops) {
  Link link(sim_, {.bandwidth_bps = 1e3, .queue_capacity = 1500},
            std::make_shared<ConstantDelay>(0), std::make_shared<NoLoss>());
  link.set_receiver([](Packet) {});
  EXPECT_TRUE(link.send(make_packet(1000)));
  EXPECT_TRUE(link.send(make_packet(400)));
  EXPECT_FALSE(link.send(make_packet(400)));  // 1400 queued; +400 > 1500.
  EXPECT_EQ(link.stats().packets_dropped_queue, 1u);
}

TEST_F(LinkTest, LossModelApplied) {
  Link link(sim_, {.bandwidth_bps = 0}, std::make_shared<ConstantDelay>(0),
            std::make_shared<BernoulliLoss>(1.0));
  int received = 0;
  link.set_receiver([&](Packet) { ++received; });
  for (int i = 0; i < 10; ++i) link.send(make_packet(100));
  sim_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.stats().packets_lost, 10u);
}

TEST_F(LinkTest, DuplicationProbability) {
  Link link(sim_, {.bandwidth_bps = 0, .duplicate_probability = 1.0},
            std::make_shared<ConstantDelay>(0), std::make_shared<NoLoss>());
  int received = 0;
  link.set_receiver([&](Packet) { ++received; });
  link.send(make_packet(100));
  sim_.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(link.stats().packets_duplicated, 1u);
}

TEST_F(LinkTest, UtilizationTracksBusyTime) {
  Link link(sim_, {.bandwidth_bps = 1e6}, std::make_shared<ConstantDelay>(0),
            std::make_shared<NoLoss>());
  link.set_receiver([](Packet) {});
  link.send(make_packet(1000));  // 8 ms busy.
  sim_.run();
  sim_.at(millis(16), [] {});
  sim_.run();
  EXPECT_NEAR(link.utilization(), 0.5, 0.01);
}

TEST_F(LinkTest, ModelSwapTakesEffect) {
  Link link(sim_, {.bandwidth_bps = 0}, std::make_shared<ConstantDelay>(0),
            std::make_shared<NoLoss>());
  int received = 0;
  link.set_receiver([&](Packet) { ++received; });
  link.send(make_packet(10));
  sim_.run();
  link.set_loss_model(std::make_shared<BernoulliLoss>(1.0));
  link.send(make_packet(10));
  sim_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(LinkTest, NetEmAppliesDelayAndLoss) {
  DuplexLink link(sim_, {.bandwidth_bps = 0},
                  std::make_shared<ConstantDelay>(0),
                  std::make_shared<NoLoss>(),
                  std::make_shared<ConstantDelay>(0),
                  std::make_shared<NoLoss>(), "t");
  NetEm netem(sim_, link, NetEm::Direction::kForward, micros(100));
  netem.apply(millis(50), 1.0);

  int forward = 0, reverse = 0;
  TimePoint reverse_arrival = -1;
  link.a_to_b.set_receiver([&](Packet) { ++forward; });
  link.b_to_a.set_receiver([&](Packet) {
    ++reverse;
    reverse_arrival = sim_.now();
  });
  link.a_to_b.send(make_packet(10));
  link.b_to_a.send(make_packet(10));
  sim_.run();
  EXPECT_EQ(forward, 0);        // 100% forward loss.
  EXPECT_EQ(reverse, 1);        // Reverse unimpaired.
  EXPECT_EQ(reverse_arrival, micros(100));
}

TEST_F(LinkTest, NetEmScheduledChange) {
  DuplexLink link(sim_, {.bandwidth_bps = 0},
                  std::make_shared<ConstantDelay>(0),
                  std::make_shared<NoLoss>(),
                  std::make_shared<ConstantDelay>(0),
                  std::make_shared<NoLoss>(), "t");
  NetEm netem(sim_, link);
  netem.apply_at(millis(10), 0, 1.0);

  int received = 0;
  link.a_to_b.set_receiver([&](Packet) { ++received; });
  link.a_to_b.send(make_packet(10));  // Before the change: delivered.
  sim_.at(millis(20), [&] { link.a_to_b.send(make_packet(10)); });
  sim_.run();
  EXPECT_EQ(received, 1);
}

TEST(Trace, GeneratorRespectsConfig) {
  TraceGenConfig config;
  config.duration = seconds(100);
  config.interval = seconds(1);
  Rng rng(12);
  const auto trace = generate_trace(config, rng);
  ASSERT_EQ(trace.points.size(), 100u);
  EXPECT_EQ(trace.total_duration(), seconds(100));
  for (const auto& p : trace.points) {
    EXPECT_GE(p.delay, config.delay_scale);
    EXPECT_LE(p.delay, config.delay_cap);
    EXPECT_GE(p.loss_rate, 0.0);
    EXPECT_LE(p.loss_rate, config.loss_bad_max);
  }
}

TEST(Trace, HasBothRegimes) {
  TraceGenConfig config;
  config.duration = seconds(600);
  Rng rng(13);
  const auto trace = generate_trace(config, rng);
  int calm = 0, bursty = 0;
  for (const auto& p : trace.points) {
    if (p.loss_rate < config.loss_good_max) ++calm;
    if (p.loss_rate >= config.loss_bad_min) ++bursty;
  }
  EXPECT_GT(calm, 0);
  EXPECT_GT(bursty, 0);
}

TEST(Trace, AtClampsToLastInterval) {
  TraceGenConfig config;
  config.duration = seconds(10);
  Rng rng(14);
  const auto trace = generate_trace(config, rng);
  EXPECT_EQ(&trace.at(seconds(9999)), &trace.points.back());
  EXPECT_EQ(&trace.at(0), &trace.points.front());
}

TEST(Trace, DeterministicGivenRng) {
  TraceGenConfig config;
  Rng a(15), b(15);
  const auto t1 = generate_trace(config, a);
  const auto t2 = generate_trace(config, b);
  ASSERT_EQ(t1.points.size(), t2.points.size());
  for (std::size_t i = 0; i < t1.points.size(); ++i) {
    EXPECT_EQ(t1.points[i].delay, t2.points[i].delay);
    EXPECT_EQ(t1.points[i].loss_rate, t2.points[i].loss_rate);
  }
}

}  // namespace
}  // namespace ks::net
