// The full RunReport JSON parser (obs/report_parse.hpp) must be an exact
// inverse of RunReport::to_json(): parse-then-serialize is byte-identical,
// including uint64 values above 2^53 (span ids, the kNoKey sentinel) that
// a double-only number representation would corrupt.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/json_parse.hpp"
#include "obs/report.hpp"
#include "obs/report_parse.hpp"
#include "obs/span.hpp"
#include "testbed/experiment.hpp"

namespace ks::obs {
namespace {

TEST(ReportParse, MetricKindFromStringInvertsToString) {
  for (const auto kind : {MetricKind::kCounter, MetricKind::kGauge,
                          MetricKind::kHistogram}) {
    const auto parsed = metric_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(metric_kind_from_string("summary").has_value());
  EXPECT_FALSE(metric_kind_from_string("").has_value());
}

TEST(ReportParse, IntegerTokensKeepExact64BitValues) {
  const auto doc = parse_json(
      "{\"big\":18446744073709551615,\"neg\":-9223372036854775808,"
      "\"frac\":1.5}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->uint_or("big"), ~std::uint64_t{0});
  EXPECT_EQ(doc->int_or("neg"),
            std::numeric_limits<std::int64_t>::min());
  const auto* frac = doc->find("frac");
  ASSERT_NE(frac, nullptr);
  EXPECT_FALSE(frac->integral);
  EXPECT_DOUBLE_EQ(frac->number, 1.5);
}

/// A report exercising every section, with awkward values: empty and
/// non-empty labels/notes, a kNoKey span, ids past 2^53, negative
/// timeline payloads.
RunReport make_full_report() {
  RunReport report;
  report.summary["p_loss"] = 0.0123456789012345;
  report.summary["duration_s"] = 18.0;
  report.metrics.push_back({"acked_total", "", MetricKind::kCounter, 500.0});
  report.metrics.push_back(
      {"inflight", "conn=\"prod:client\"", MetricKind::kGauge, 3.0});
  report.histograms.push_back(
      {"latency_us", "stage=\"e2e\"", 499, 1234.5, 1100.0, 4000.0, 9000.0});
  Sampler::Series series;
  series.name = "acked_total";
  series.kind = MetricKind::kCounter;
  series.t = {100000, 200000};
  series.v = {10.0, 20.0};
  report.series.push_back(series);
  report.trace_sample_every = 10;
  report.trace_dropped = 2;
  report.trace.push_back({150000, 40, "produce.enqueue", 0});
  report.trace.push_back({160000, 40, "broker.append", 1});
  report.span_sample_every = 1;
  report.spans_dropped = 0;
  report.spans.push_back(
      {(1ull << 60) + 7, 0, kNoKey, "election", kTrackControl, -5, 100, 900});
  report.spans.push_back({2, 1, 40, "produce", kTrackProducer, 0, 150, 450});
  report.timeline_dropped = 1;
  report.timeline.push_back(
      {120000, "leader_elected", 2, 0, -1, 7, "isr shrank"});
  report.timeline.push_back({130000, "isr_change", 1, 0, 3, 2, ""});
  report.acked_lost_keys = {41, (1ull << 55) + 3};
  report.lost_keys = {44};
  report.perf.wall_us = 123456;
  report.perf.peak_rss_kb = 5652;
  report.perf.profiled = true;
  report.perf.alloc_count = 288307;
  report.perf.alloc_bytes = (1ull << 54) + 99;
  report.perf.sections.push_back({"sim.event_dispatch", 99019, 46411254});
  report.perf.sections.push_back({"tcp.segment", 39995, 7000000});
  return report;
}

TEST(ReportParse, HandBuiltReportRoundTripsByteExact) {
  const RunReport report = make_full_report();
  const std::string json = report.to_json();
  const auto parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), json);

  // Spot-check exactness where doubles would have lost bits.
  ASSERT_EQ(parsed->spans.size(), 2u);
  EXPECT_EQ(parsed->spans[0].key, kNoKey);
  EXPECT_EQ(parsed->spans[0].id, (1ull << 60) + 7);
  EXPECT_EQ(parsed->perf.alloc_bytes, (1ull << 54) + 99);
  EXPECT_EQ(parsed->acked_lost_keys[1], (1ull << 55) + 3);
  EXPECT_TRUE(parsed->perf.profiled);
}

TEST(ReportParse, CanonicalJsonRoundTripsByteExact) {
  const RunReport report = make_full_report();
  const std::string canonical = report.canonical_json();
  const auto parsed = report_from_json(canonical);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->canonical_json(), canonical);
  // The canonical export has no perf section, so the parsed report's perf
  // stays default.
  EXPECT_EQ(parsed->perf.wall_us, 0u);
  EXPECT_FALSE(parsed->perf.profiled);
}

TEST(ReportParse, ExperimentReportRoundTripsByteExact) {
  testbed::Scenario sc;
  sc.seed = 7;
  sc.num_messages = 300;
  sc.message_size = 300;
  sc.packet_loss = 0.1;
  sc.network_delay = millis(20);
  sc.sample_interval = millis(200);
  sc.trace_sample_every = 5;
  sc.trace_capacity = 8192;
  sc.spans_enabled = true;
  sc.span_sample_every = 5;
  sc.span_capacity = 8192;
  sc.profiler_enabled = true;
  const auto result = testbed::run_experiment(sc);

  const std::string json = result.report.to_json();
  const auto parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), json);
  EXPECT_EQ(parsed->canonical_json(), result.report.canonical_json());
  // The parsed report is queryable like the original.
  EXPECT_EQ(parsed->metric("producer_records_acked_total"),
            result.report.metric("producer_records_acked_total"));
  EXPECT_FALSE(parsed->metrics.empty());
  EXPECT_FALSE(parsed->series.empty());
  EXPECT_GT(parsed->perf.wall_us, 0u);
}

TEST(ReportParse, HealthSectionWithAlertsRoundTripsByteExact) {
  // A grouped run with a permanent member crash populates every part of
  // the health section: series, sketch, alert ledger, verdicts.
  testbed::Scenario sc;
  sc.seed = 13;
  sc.num_messages = 300;
  sc.partitions = 2;
  sc.group_size = 2;
  testbed::FaultAction crash;
  crash.kind = testbed::FaultAction::Kind::kConsumerCrash;
  crash.member = 0;
  crash.at = millis(200);
  sc.faults.push_back(crash);
  const auto result = testbed::run_experiment(sc);
  ASSERT_FALSE(result.report.health.alerts.empty());
  ASSERT_FALSE(result.report.health.verdicts.empty());

  const std::string json = result.report.to_json();
  const auto parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), json);
  ASSERT_EQ(parsed->health.alerts.size(), result.report.health.alerts.size());
  EXPECT_EQ(parsed->health.alerts[0].detector,
            result.report.health.alerts[0].detector);
  EXPECT_EQ(parsed->health.alerts[0].opened_us,
            result.report.health.alerts[0].opened_us);
  ASSERT_EQ(parsed->health.verdicts.size(),
            result.report.health.verdicts.size());
  EXPECT_EQ(parsed->health.verdicts[0].verdict,
            result.report.health.verdicts[0].verdict);
  EXPECT_EQ(parsed->health.ticks, result.report.health.ticks);
  EXPECT_EQ(parsed->health.series.size(), result.report.health.series.size());
}

TEST(ReportParse, RejectsMalformedInput) {
  EXPECT_FALSE(report_from_json("not json").has_value());
  EXPECT_FALSE(report_from_json("[1,2,3]").has_value());
  EXPECT_FALSE(
      report_from_json(
          "{\"metrics\":[{\"name\":\"x\",\"kind\":\"nonsense\",\"value\":1}]}")
          .has_value());
  // An empty object is a valid (empty) report, not an error.
  const auto empty = report_from_json("{}");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->metrics.empty());
}

TEST(ReportParse, LoadRunReportReadsWhatWriteJsonWrote) {
  const RunReport report = make_full_report();
  const std::string path =
      testing::TempDir() + "/report_parse_roundtrip.json";
  ASSERT_TRUE(report.write_json(path));
  const auto loaded = load_run_report(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_json(), report.to_json());
  EXPECT_FALSE(load_run_report(path + ".missing").has_value());
}

}  // namespace
}  // namespace ks::obs
