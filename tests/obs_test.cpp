// Unit tests for src/obs/: metrics registry + handles, collectors, the
// sim-time sampler, the bounded message trace and the exporters.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace ks::obs {
namespace {

TEST(MetricsRegistry, CounterIncrementAndRead) {
  MetricsRegistry reg;
  Counter c = reg.counter("requests_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
}

TEST(MetricsRegistry, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(3.0);
  h.observe(millis(1));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.get(), nullptr);
}

TEST(MetricsRegistry, SameNameAndLabelsShareACell) {
  MetricsRegistry reg;
  Counter a = reg.counter("x_total", {{"conn", "c1"}});
  Counter b = reg.counter("x_total", {{"conn", "c1"}});
  Counter other = reg.counter("x_total", {{"conn", "c2"}});
  a.inc(5);
  b.inc(2);
  other.inc(1);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(other.value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("depth");
  g.set(4.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsRegistry, HistogramObserves) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat_us");
  h.observe(millis(2));
  h.observe(millis(4));
  ASSERT_NE(h.get(), nullptr);
  EXPECT_EQ(h.get()->count(), 2u);
}

TEST(MetricsRegistry, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry reg;
  Counter first = reg.counter("first_total");
  first.inc();
  for (int i = 0; i < 200; ++i) {
    reg.counter("c" + std::to_string(i));
    reg.gauge("g" + std::to_string(i));
  }
  first.inc();
  EXPECT_EQ(first.value(), 2u);  // Deque cells: no reallocation moved it.
}

TEST(MetricsRegistry, CollectorPublishesOnCollect) {
  MetricsRegistry reg;
  std::uint64_t source = 0;
  Counter mirror = reg.counter("mirrored_total");
  CollectorHandle h = reg.add_collector([&] { mirror.set(source); });
  source = 42;
  EXPECT_EQ(mirror.value(), 0u);  // Not yet collected.
  reg.collect();
  EXPECT_EQ(mirror.value(), 42u);
}

TEST(MetricsRegistry, CollectorHandleDeregistersOnDestruction) {
  MetricsRegistry reg;
  int calls = 0;
  {
    CollectorHandle h = reg.add_collector([&] { ++calls; });
    reg.collect();
    EXPECT_EQ(calls, 1);
  }
  reg.collect();  // Handle gone: collector must not fire (or dangle).
  EXPECT_EQ(calls, 1);
}

TEST(MetricsRegistry, CollectorHandleMoveTransfersOwnership) {
  MetricsRegistry reg;
  int calls = 0;
  CollectorHandle outer;
  {
    CollectorHandle inner = reg.add_collector([&] { ++calls; });
    outer = std::move(inner);
  }
  reg.collect();
  EXPECT_EQ(calls, 1);  // Moved-to handle kept the registration alive.
}

TEST(MetricsRegistry, VisitSeesAllKindsWithFullNames) {
  MetricsRegistry reg;
  reg.counter("a_total");
  reg.gauge("b", {{"k", "v"}});
  reg.histogram("c_us");
  std::vector<std::string> names;
  reg.visit([&](const MetricsRegistry::MetricInfo& m) {
    names.push_back(m.full_name());
  });
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a_total");
  EXPECT_EQ(names[1], "b{k=\"v\"}");
  EXPECT_EQ(names[2], "c_us");
}

TEST(Sampler, BuildsAlignedSeries) {
  MetricsRegistry reg;
  Counter c = reg.counter("events_total");
  Gauge g = reg.gauge("depth");
  Sampler sampler(reg, millis(10));
  c.inc(1);
  g.set(2.0);
  sampler.sample(millis(10));
  c.inc(1);
  g.set(5.0);
  sampler.sample(millis(20));

  EXPECT_EQ(sampler.samples_taken(), 2u);
  ASSERT_EQ(sampler.series().size(), 2u);
  const auto& cs = sampler.series()[0];
  EXPECT_EQ(cs.name, "events_total");
  ASSERT_EQ(cs.v.size(), 2u);
  EXPECT_DOUBLE_EQ(cs.v[0], 1.0);
  EXPECT_DOUBLE_EQ(cs.v[1], 2.0);
  EXPECT_EQ(cs.t[0], millis(10));
  EXPECT_EQ(cs.t[1], millis(20));
}

TEST(Sampler, RunsCollectorsBeforeSnapshot) {
  MetricsRegistry reg;
  std::uint64_t source = 7;
  Counter mirror = reg.counter("m_total");
  CollectorHandle h = reg.add_collector([&] { mirror.set(source); });
  Sampler sampler(reg);
  sampler.sample(0);
  ASSERT_EQ(sampler.series().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.series()[0].v[0], 7.0);
}

TEST(Sampler, WatchPrefixNarrowsSelection) {
  MetricsRegistry reg;
  reg.counter("tcp_segments_total");
  reg.counter("kafka_batches_total");
  Sampler sampler(reg);
  sampler.watch("tcp_");
  sampler.sample(0);
  ASSERT_EQ(sampler.series().size(), 1u);
  EXPECT_EQ(sampler.series()[0].name, "tcp_segments_total");
}

TEST(Sampler, LateMetricsJoinWithShorterSeries) {
  MetricsRegistry reg;
  Counter a = reg.counter("a_total");
  Sampler sampler(reg);
  a.inc();
  sampler.sample(millis(1));
  Counter b = reg.counter("b_total");
  b.inc(3);
  sampler.sample(millis(2));
  ASSERT_EQ(sampler.series().size(), 2u);
  EXPECT_EQ(sampler.series()[0].v.size(), 2u);
  ASSERT_EQ(sampler.series()[1].v.size(), 1u);
  EXPECT_EQ(sampler.series()[1].t[0], millis(2));
}

TEST(Sampler, CsvHasHeaderAndOneRowPerSample) {
  MetricsRegistry reg;
  Counter c = reg.counter("n_total");
  Sampler sampler(reg);
  c.inc();
  sampler.sample(1000);
  c.inc();
  sampler.sample(2000);
  const std::string csv = sampler.to_csv();
  EXPECT_NE(csv.find("time_us,n_total"), std::string::npos);
  EXPECT_NE(csv.find("1000,1"), std::string::npos);
  EXPECT_NE(csv.find("2000,2"), std::string::npos);
}

TEST(MessageTrace, RecordsOnlySampledKeys) {
  MessageTrace trace(16, 10);  // Keys 0, 10, 20, ...
  trace.record(1, 10, TraceEvent::kSendAttempt);
  trace.record(2, 11, TraceEvent::kSendAttempt);
  EXPECT_TRUE(trace.sampled(10));
  EXPECT_FALSE(trace.sampled(11));
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.entries()[0].key, 10u);
}

TEST(MessageTrace, ZeroSampleEveryDisables) {
  MessageTrace trace(16, 0);
  EXPECT_FALSE(trace.enabled());
  trace.record(1, 0, TraceEvent::kSendAttempt);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(MessageTrace, RingOverwritesOldestAndCountsDropped) {
  MessageTrace trace(4, 1);
  for (std::uint64_t k = 0; k < 10; ++k) {
    trace.record(static_cast<TimePoint>(k), k, TraceEvent::kAppended);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.recorded(), 10u);
  const auto entries = trace.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().key, 6u);  // Oldest retained.
  EXPECT_EQ(entries.back().key, 9u);   // Newest.
}

TEST(MessageTrace, EventsForFiltersOneLifecycle) {
  MessageTrace trace(64, 1);
  trace.record(1, 5, TraceEvent::kSendAttempt, 1);
  trace.record(2, 6, TraceEvent::kSendAttempt, 1);
  trace.record(3, 5, TraceEvent::kRetry, 2);
  trace.record(4, 5, TraceEvent::kAcked, 2);
  const auto life = trace.events_for(5);
  ASSERT_EQ(life.size(), 3u);
  EXPECT_EQ(life[0].event, TraceEvent::kSendAttempt);
  EXPECT_EQ(life[1].event, TraceEvent::kRetry);
  EXPECT_EQ(life[2].event, TraceEvent::kAcked);
  EXPECT_EQ(life[2].detail, 2);
}

TEST(JsonWriter, NestedStructuresAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("he said \"hi\"\n");
  w.key("xs");
  w.begin_array();
  w.value(1);
  w.value(2.5);
  w.value(true);
  w.raw("{\"k\":null}");
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"he said \\\"hi\\\"\\n\","
            "\"xs\":[1,2.5,true,{\"k\":null}]}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Exporters, PrometheusTextContainsTypeAndValues) {
  MetricsRegistry reg;
  Counter c = reg.counter("requests_total", {{"conn", "a"}});
  c.inc(3);
  Gauge g = reg.gauge("depth");
  g.set(1.5);
  Histogram h = reg.histogram("lat_us");
  h.observe(millis(1));
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{conn=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);
}

TEST(Exporters, RunReportCarriesMetricsSeriesAndTrace) {
  MetricsRegistry reg;
  Counter c = reg.counter("events_total");
  c.inc(2);
  Histogram h = reg.histogram("lat_us");
  h.observe(millis(3));
  Sampler sampler(reg);
  sampler.sample(millis(1));
  MessageTrace trace(16, 1);
  trace.record(millis(1), 7, TraceEvent::kAcked, 1);

  const RunReport report = build_run_report(reg, &sampler, &trace);
  EXPECT_DOUBLE_EQ(report.metric("events_total"), 2.0);
  ASSERT_FALSE(report.histograms.empty());
  EXPECT_EQ(report.histograms[0].count, 1u);
  ASSERT_FALSE(report.series.empty());
  ASSERT_EQ(report.trace.size(), 1u);
  EXPECT_EQ(report.trace[0].event, "acked");

  const std::string json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"events_total\""), std::string::npos);
}

TEST(Exporters, RunReportCollectsBeforeSnapshot) {
  MetricsRegistry reg;
  std::uint64_t source = 13;
  Counter mirror = reg.counter("m_total");
  CollectorHandle h = reg.add_collector([&] { mirror.set(source); });
  const RunReport report = build_run_report(reg);
  EXPECT_DOUBLE_EQ(report.metric("m_total"), 13.0);
  EXPECT_DOUBLE_EQ(report.metric("missing", -1.0), -1.0);
}

// The self-profiler is a process-wide singleton; tests restore its state
// so order does not matter.
class ProfilerTest : public testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = profiler().enabled();
    profiler().enable(false);
    profiler().reset();
  }
  void TearDown() override {
    profiler().reset();
    profiler().enable(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(ProfilerTest, DisabledScopeRecordsNothing) {
  { ProfScope scope(ProfKey::kTcpSegment); }
  const auto snap = profiler().snapshot();
  EXPECT_EQ(snap.section(ProfKey::kTcpSegment).calls, 0u);
}

TEST_F(ProfilerTest, EnabledScopeCountsCallsAndTime) {
  profiler().enable(true);
  for (int i = 0; i < 3; ++i) {
    ProfScope scope(ProfKey::kBrokerProduce);
  }
  const auto snap = profiler().snapshot();
  EXPECT_EQ(snap.section(ProfKey::kBrokerProduce).calls, 3u);
  EXPECT_EQ(snap.section(ProfKey::kBrokerFetch).calls, 0u);
}

TEST_F(ProfilerTest, ScopeArmsAtConstructionNotDestruction) {
  // Enabling mid-scope must not record: the scope sampled the clock only
  // if the profiler was on when it opened.
  profiler().enable(false);
  {
    ProfScope scope(ProfKey::kInvariantCheck);
    profiler().enable(true);
  }
  EXPECT_EQ(profiler().snapshot().section(ProfKey::kInvariantCheck).calls,
            0u);
}

TEST_F(ProfilerTest, SnapshotSinceSubtractsPairwise) {
  profiler().enable(true);
  { ProfScope scope(ProfKey::kEventDispatch); }
  const auto mid = profiler().snapshot();
  { ProfScope scope(ProfKey::kEventDispatch); }
  { ProfScope scope(ProfKey::kEventDispatch); }
  const auto delta = profiler().snapshot().since(mid);
  EXPECT_EQ(delta.section(ProfKey::kEventDispatch).calls, 2u);
}

TEST_F(ProfilerTest, EveryKeyHasAStableName) {
  for (std::size_t i = 0; i < kProfKeyCount; ++i) {
    const char* name = to_string(static_cast<ProfKey>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?");
  }
}

TEST_F(ProfilerTest, PeakRssIsPositiveAndMonotone) {
  const auto first = peak_rss_kb();
  EXPECT_GT(first, 0);
  EXPECT_GE(peak_rss_kb(), first);
}

}  // namespace
}  // namespace ks::obs
