// Parameterised property sweeps over the experiment space: invariants that
// must hold for EVERY scenario, regardless of calibration.
#include <gtest/gtest.h>

#include <tuple>

#include "testbed/experiment.hpp"

namespace ks::testbed {
namespace {

using SweepParam =
    std::tuple<kafka::DeliverySemantics, double /*loss*/, int /*batch*/,
               std::int64_t /*delay_ms*/>;

class ExperimentInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ExperimentInvariants, CensusIsConsistent) {
  const auto [semantics, loss, batch, delay_ms] = GetParam();
  Scenario sc;
  sc.semantics = semantics;
  sc.packet_loss = loss;
  sc.batch_size = batch;
  sc.network_delay = millis(delay_ms);
  sc.message_timeout = millis(2000);
  sc.num_messages = 1200;
  sc.seed = 4451;

  const auto r = run_experiment(sc);

  // 1. The census partitions the key space.
  EXPECT_EQ(r.census.delivered + r.census.duplicated + r.census.lost,
            sc.num_messages);
  EXPECT_EQ(r.census.total_keys, sc.num_messages);

  // 2. Probabilities in range.
  EXPECT_GE(r.p_loss, 0.0);
  EXPECT_LE(r.p_loss, 1.0);
  EXPECT_GE(r.p_duplicate, 0.0);
  EXPECT_LE(r.p_duplicate, 1.0);

  // 3. The appended-record count is at least the unique deliveries and
  //    accounts for duplicates.
  EXPECT_GE(r.census.appended_records,
            r.census.delivered + 2 * r.census.duplicated);

  // 4. The Table I case census agrees with the key census.
  std::uint64_t case_sum = 0;
  for (auto c : r.cases.cases) case_sum += c;
  EXPECT_EQ(case_sum, sc.num_messages);
  EXPECT_EQ(r.cases.cases[5], r.census.duplicated);  // Case5 == duplicated.
  EXPECT_EQ(r.cases.cases[1] + r.cases.cases[4], r.census.delivered);

  // 5. Semantics-specific guarantees.
  if (semantics == kafka::DeliverySemantics::kAtMostOnce ||
      semantics == kafka::DeliverySemantics::kExactlyOnce) {
    EXPECT_EQ(r.census.duplicated, 0u);
  }
  if (semantics == kafka::DeliverySemantics::kAtMostOnce) {
    // No retries ever: nothing can be attempted more than once.
    EXPECT_EQ(r.cases.cases[3], 0u);
    EXPECT_EQ(r.cases.cases[4], 0u);
  }

  // 6. The run terminated (the harness caps at kMaxSimTime).
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SemanticsLossBatchDelay, ExperimentInvariants,
    ::testing::Combine(
        ::testing::Values(kafka::DeliverySemantics::kAtMostOnce,
                          kafka::DeliverySemantics::kAtLeastOnce,
                          kafka::DeliverySemantics::kExactlyOnce),
        ::testing::Values(0.0, 0.15, 0.35),
        ::testing::Values(1, 5),
        ::testing::Values<std::int64_t>(0, 80)));

class TimeoutMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(TimeoutMonotonicity, LongerTimeoutNeverLosesMore) {
  // With common random numbers, increasing T_o can only reduce expiry loss.
  Scenario sc;
  sc.source_mode = SourceMode::kOnDemand;
  sc.semantics = kafka::DeliverySemantics::kAtMostOnce;
  sc.num_messages = 2500;
  sc.seed = static_cast<std::uint64_t>(GetParam());

  double prev = 1.1;
  for (auto t_o : {millis(300), millis(800), millis(2000), seconds(10)}) {
    sc.message_timeout = t_o;
    const auto r = run_experiment(sc);
    EXPECT_LE(r.p_loss, prev + 1e-9) << "T_o=" << to_millis(t_o);
    prev = r.p_loss;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeoutMonotonicity,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ks::testbed
