// Unit tests for sim/: event queue ordering/cancellation, the simulation
// kernel, timers and the two-state regime modulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/modulator.hpp"
#include "sim/simulation.hpp"

namespace ks::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1, [] {});
  q.push(9, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  TimePoint seen = -1;
  sim.at(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  std::vector<TimePoint> times;
  sim.at(50, [&] {
    sim.after(25, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 75);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  TimePoint seen = -1;
  sim.at(100, [&] {
    sim.at(10, [&] { seen = sim.now(); });  // In the past.
  });
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulation, RunUntilHorizon) {
  Simulation sim;
  int count = 0;
  for (TimePoint t = 10; t <= 100; t += 10) {
    sim.at(t, [&] { ++count; });
  }
  sim.run(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50);
  sim.run(1000);
  EXPECT_EQ(count, 10);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int count = 0;
  sim.at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, StepRunsOne) {
  Simulation sim;
  int count = 0;
  sim.at(1, [&] { ++count; });
  sim.at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.at(5, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Timer, FiresOnce) {
  Simulation sim;
  Timer timer(sim);
  int fired = 0;
  timer.arm(10, [&] { ++fired; });
  EXPECT_TRUE(timer.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulation sim;
  Timer timer(sim);
  int which = 0;
  timer.arm(10, [&] { which = 1; });
  timer.arm(20, [&] { which = 2; });
  sim.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(sim.now(), 20);
}

TEST(Timer, CancelPreventsFire) {
  Simulation sim;
  Timer timer(sim);
  bool fired = false;
  timer.arm(10, [&] { fired = true; });
  timer.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, DeadlineReported) {
  Simulation sim;
  Timer timer(sim);
  timer.arm(42, [] {});
  EXPECT_EQ(timer.deadline(), 42);
}

TEST(Timer, DestructorCancels) {
  Simulation sim;
  bool fired = false;
  {
    Timer timer(sim);
    timer.arm(10, [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, RearmInsideCallback) {
  Simulation sim;
  Timer timer(sim);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 5) timer.arm(10, tick);
  };
  timer.arm(10, tick);
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Modulator, DisabledStaysGood) {
  Simulation sim;
  TwoStateModulator mod(sim, {.enabled = false});
  mod.start();
  sim.run(seconds(10));
  EXPECT_TRUE(mod.good());
}

TEST(Modulator, AlternatesStates) {
  Simulation sim;
  TwoStateModulator mod(sim,
                        {.mean_good = millis(100), .mean_bad = millis(50),
                         .enabled = true});
  int changes = 0;
  Regime last = Regime::kGood;
  mod.on_change([&](Regime r) {
    EXPECT_NE(r, last);
    last = r;
    ++changes;
  });
  mod.start();
  sim.run(seconds(10));
  EXPECT_GT(changes, 20);
}

TEST(Modulator, DutyCycleApproximatesMeans) {
  Simulation sim;
  TwoStateModulator mod(sim,
                        {.mean_good = millis(200), .mean_bad = millis(100),
                         .enabled = true});
  TimePoint bad_time = 0;
  TimePoint last_change = 0;
  mod.on_change([&](Regime r) {
    if (r == Regime::kGood) bad_time += sim.now() - last_change;
    last_change = sim.now();
  });
  mod.start();
  sim.run(seconds(300));
  const double bad_fraction =
      static_cast<double>(bad_time) / static_cast<double>(sim.now());
  EXPECT_NEAR(bad_fraction, 1.0 / 3.0, 0.05);
}

}  // namespace
}  // namespace ks::sim
