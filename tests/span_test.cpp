// Causal-tracing subsystem tests: SpanTracer sampling and well-formedness,
// ClusterTimeline bounds, the Perfetto/Chrome trace-event export, the JSON
// reader, and the ks_explain narrative on the pinned acked-loss seeds.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos/generator.hpp"
#include "obs/explain.hpp"
#include "obs/json_parse.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "testbed/experiment.hpp"

namespace ks::obs {
namespace {

TEST(SpanTracer, DisabledRecordsNothing) {
  SpanTracer tracer;  // Default: sample_every = 0 => disabled.
  EXPECT_FALSE(tracer.enabled());
  const auto id = tracer.begin(10, SpanKind::kProduceBatch, kTrackProducer,
                               0, /*key=*/0);
  EXPECT_EQ(id, 0u);
  tracer.end(20, id);     // Id 0 must be accepted and ignored...
  tracer.cancel(id);      // ...by every entry point.
  EXPECT_EQ(tracer.started(), 0u);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(SpanTracer, RootSamplingGatesByKey) {
  SpanTracer tracer(64, /*sample_every=*/4);
  EXPECT_NE(tracer.begin(1, SpanKind::kProduceBatch, kTrackProducer, 0, 0),
            0u);
  EXPECT_EQ(tracer.begin(1, SpanKind::kProduceBatch, kTrackProducer, 0, 3),
            0u);
  EXPECT_NE(tracer.begin(1, SpanKind::kProduceBatch, kTrackProducer, 0, 8),
            0u);
  // kNoKey roots bypass key sampling (consumer fetches, control work).
  EXPECT_NE(tracer.begin(1, SpanKind::kConsumerFetch, kTrackConsumer, 0,
                         kNoKey),
            0u);
}

TEST(SpanTracer, ChildFollowsParentAndInheritsKey) {
  SpanTracer tracer(64, /*sample_every=*/4);
  const auto root =
      tracer.begin(1, SpanKind::kProduceAttempt, kTrackProducer, 0, 8);
  ASSERT_NE(root, 0u);
  const auto child =
      tracer.begin(2, SpanKind::kBrokerAppend, broker_track(0), root);
  ASSERT_NE(child, 0u);
  // A root with an unsampled key is unrecorded — and because SpanId 0
  // propagates as the parent down the chain, so is everything below it.
  EXPECT_EQ(tracer.begin(2, SpanKind::kBrokerAppend, broker_track(0), 0, 3),
            0u);
  // A nonzero parent that is no longer open (already closed or evicted) is
  // still recorded — spans() later promotes it to a root — but there is no
  // open parent to inherit a key from.
  const auto late = tracer.begin(3, SpanKind::kCommitWait, broker_track(0),
                                 /*parent=*/999999u);
  EXPECT_NE(late, 0u);
  tracer.cancel(late);

  tracer.end(5, child, /*detail=*/42);
  tracer.end(6, root);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completed child first (rings hold spans in completion order).
  EXPECT_EQ(spans[0].parent, root);
  EXPECT_EQ(spans[0].key, 8u) << "child must inherit the open parent's key";
  EXPECT_EQ(spans[0].detail, 42);
  EXPECT_EQ(spans[1].id, root);
  EXPECT_EQ(spans[1].parent, 0u);
}

TEST(SpanTracer, CancelDiscardsAndCloseOpenFlushes) {
  SpanTracer tracer(64, /*sample_every=*/1);
  const auto doomed =
      tracer.begin(1, SpanKind::kProduceAttempt, kTrackProducer, 0, 1);
  tracer.cancel(doomed);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_TRUE(tracer.spans().empty());

  const auto orphan =
      tracer.begin(2, SpanKind::kTcpFlight, kTrackNet, 0, 1);
  ASSERT_NE(orphan, 0u);
  tracer.close_open(9);
  EXPECT_EQ(tracer.open_count(), 0u);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 2);
  EXPECT_EQ(spans[0].end, 9);
}

// The exported forest must stay well-formed under ring eviction: every
// nonzero parent exists in the export, and intervals nest (children begin
// no earlier than their parent).
TEST(SpanTracer, RingEvictionKeepsForestWellFormed) {
  SpanTracer tracer(/*capacity=*/8, /*sample_every=*/1);
  for (std::uint64_t k = 0; k < 20; ++k) {
    const TimePoint t0 = static_cast<TimePoint>(k * 10);
    const auto root =
        tracer.begin(t0, SpanKind::kProduceAttempt, kTrackProducer, 0, k);
    const auto child =
        tracer.begin(t0 + 1, SpanKind::kBrokerAppend, broker_track(0), root);
    const auto grandchild =
        tracer.begin(t0 + 2, SpanKind::kCommitWait, broker_track(0), child);
    tracer.end(t0 + 3, grandchild);
    tracer.end(t0 + 4, child);
    tracer.end(t0 + 5, root);
  }
  EXPECT_GT(tracer.dropped(), 0u) << "test must actually overflow the ring";

  const auto spans = tracer.spans();
  EXPECT_EQ(spans.size(), 8u);
  std::map<SpanId, const Span*> by_id;
  for (const auto& s : spans) by_id.emplace(s.id, &s);
  for (const auto& s : spans) {
    EXPECT_GE(s.end, s.begin);
    if (s.parent == 0) continue;
    auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end())
        << "span " << s.id << " points at evicted parent " << s.parent;
    EXPECT_GE(s.begin, it->second->begin) << "child starts before parent";
    EXPECT_EQ(s.key, it->second->key);
  }
}

TEST(SpanTracer, ConfigureResetsState) {
  SpanTracer tracer(8, 1);
  tracer.end(2, tracer.begin(1, SpanKind::kDeliver, kTrackConsumer, 0, 1));
  ASSERT_EQ(tracer.spans().size(), 1u);
  tracer.configure(8, 2);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.started(), 0u);
  tracer.configure(0, 0);
  EXPECT_FALSE(tracer.enabled());
}

TEST(ClusterTimeline, BoundedRingOldestFirst) {
  ClusterTimeline timeline(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    timeline.record(i, ClusterEventKind::kIsrShrink, /*broker=*/i, 0, 2);
  }
  EXPECT_EQ(timeline.recorded(), 6u);
  EXPECT_EQ(timeline.dropped(), 2u);
  const auto events = timeline.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t, static_cast<TimePoint>(i + 2));
    EXPECT_EQ(events[i].broker, static_cast<std::int32_t>(i + 2));
  }
  timeline.clear();
  EXPECT_TRUE(timeline.events().empty());
}

TEST(JsonParse, RoundTripsBasicDocuments) {
  const auto doc = parse_json(
      R"({"a": 1.5, "b": "x\n\"y", "c": [true, null, -3], "d": {}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->num_or("a"), 1.5);
  EXPECT_EQ(doc->str_or("b"), "x\n\"y");
  const auto* c = doc->find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_EQ(c->array[2].number, -3.0);
  EXPECT_EQ(doc->int_or("missing", 7), 7);

  EXPECT_FALSE(parse_json("{\"unterminated\": ").has_value());
  EXPECT_FALSE(parse_json("{} trailing").has_value());
}

// The Perfetto export of a real run must be valid Chrome trace-event JSON:
// an object with a traceEvents array whose entries all carry ph/pid, with
// ts on every non-metadata event.
TEST(PerfettoExport, ParsesWithRequiredFields) {
  testbed::Scenario sc;
  sc.seed = 7;
  sc.num_messages = 200;
  sc.trace_sample_every = 5;
  sc.span_sample_every = 5;
  const auto result = testbed::run_experiment(sc);
  ASSERT_FALSE(result.report.spans.empty());

  const auto doc = parse_json(result.report.perfetto_json());
  ASSERT_TRUE(doc.has_value()) << "perfetto export is not valid JSON";
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());
  std::set<std::string> phases;
  for (const auto& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.str_or("ph");
    phases.insert(ph);
    EXPECT_FALSE(ph.empty());
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
    if (ph != "M") {
      EXPECT_NE(e.find("ts"), nullptr);
      EXPECT_FALSE(e.str_or("name").empty());
    }
    if (ph == "X") {
      EXPECT_GE(e.int_or("dur"), 0);
    }
  }
  EXPECT_TRUE(phases.count("M")) << "no thread-name metadata events";
  EXPECT_TRUE(phases.count("X")) << "no complete (span) events";
}

// Spans exported from a full experiment stay a well-formed forest keyed
// consistently with the message trace.
TEST(PerfettoExport, ExperimentSpanForestIsWellFormed) {
  testbed::Scenario sc;
  sc.seed = 11;
  sc.num_messages = 300;
  sc.trace_sample_every = 7;
  const auto result = testbed::run_experiment(sc);
  ASSERT_FALSE(result.report.spans.empty());
  std::map<std::uint64_t, const RunReport::SpanEntry*> by_id;
  for (const auto& s : result.report.spans) by_id.emplace(s.id, &s);
  std::set<std::string> kinds;
  for (const auto& s : result.report.spans) {
    kinds.insert(s.kind);
    EXPECT_GE(s.end, s.begin);
    if (s.parent == 0) continue;
    auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end()) << "dangling parent in export";
    EXPECT_GE(s.begin, it->second->begin);
  }
  // The produce-side causal chain must be present end to end.
  EXPECT_TRUE(kinds.count("produce.batch"));
  EXPECT_TRUE(kinds.count("produce.attempt"));
  EXPECT_TRUE(kinds.count("tcp.flight"));
  EXPECT_TRUE(kinds.count("broker.append"));
  // And the consumer drain contributes fetch spans.
  EXPECT_TRUE(kinds.count("consumer.fetch"));
}

// Acceptance: ks_explain on the pinned acked-loss corpus seeds must tell
// the durability-gap story — the append, the election, the truncation —
// and reach the ACKED BUT LOST verdict. This drives the same path as
// `ks_explain --seed 0x14b`.
TEST(Explain, PinnedAckedLossSeedsNameAppendElectionTruncation) {
  std::string combined;
  for (const std::uint64_t seed : {0x14bULL, 0x15bULL}) {
    auto cs = chaos::generate_scenario(seed);
    auto& scenario = cs.scenario;
    scenario.trace_sample_every = 1;
    scenario.trace_capacity =
        static_cast<std::size_t>(scenario.num_messages) * 16 + 4096;
    scenario.span_sample_every = 1;
    scenario.span_capacity = scenario.trace_capacity;
    const auto result = testbed::run_experiment(scenario);
    ASSERT_GT(result.acked_lost, 0u)
        << "seed 0x" << std::hex << seed << " no longer loses acked data";
    ASSERT_FALSE(result.report.acked_lost_keys.empty());

    const auto key = pick_explain_key(result.report);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, result.report.acked_lost_keys.front());
    const auto narrative = explain_key(result.report, *key);
    SCOPED_TRACE(narrative);
    EXPECT_NE(narrative.find("appended on broker"), std::string::npos);
    EXPECT_NE(narrative.find("ACKED BUT LOST"), std::string::npos);
    combined += narrative;
  }
  // Between them, the pinned seeds must exhibit the full story: a leader
  // election and the records being truncated away.
  EXPECT_NE(combined.find("election"), std::string::npos);
  EXPECT_NE(combined.find("truncat"), std::string::npos);
}

// Acceptance: the ks_explain narrative narrates health-alert lifecycle
// edges from the cluster timeline, and the verdict names alerts still
// open at the end of the run. Crashing every member for good leaves the
// partitions unowned with backlog: the monitor must raise lag alerts
// that never resolve, and the narrative must surface both.
TEST(Explain, NarrativeCarriesHealthAlertsAndOpenAlertVerdictTail) {
  testbed::Scenario scenario;
  scenario.num_messages = 300;
  scenario.message_size = 256;
  scenario.source_mode = testbed::SourceMode::kOnDemand;
  scenario.batch_size = 4;
  scenario.partitions = 2;
  scenario.group_size = 2;
  scenario.seed = 11;
  scenario.trace_sample_every = 1;
  scenario.trace_capacity =
      static_cast<std::size_t>(scenario.num_messages) * 16 + 4096;
  testbed::FaultAction crash;
  crash.kind = testbed::FaultAction::Kind::kConsumerCrash;
  crash.at = millis(500);
  crash.member = 0;
  scenario.faults.push_back(crash);
  crash.at = millis(600);
  crash.member = 1;
  scenario.faults.push_back(crash);

  const auto result = testbed::run_experiment(scenario);
  ASSERT_GT(result.health_ticks, 0u);
  ASSERT_GT(result.health_lag_alerts, 0u);
  bool open_at_end = false;
  for (const auto& a : result.report.health.alerts) {
    if (a.resolved_us == -1) open_at_end = true;
  }
  ASSERT_TRUE(open_at_end)
      << "total member loss left no alert open at end of run";

  const auto key = pick_explain_key(result.report);
  ASSERT_TRUE(key.has_value());
  const auto narrative = explain_key(result.report, *key);
  SCOPED_TRACE(narrative);
  EXPECT_NE(narrative.find("HEALTH ALERT"), std::string::npos);
  EXPECT_NE(narrative.find("still open at end of run"), std::string::npos);
}

}  // namespace
}  // namespace ks::obs
