// Property tests for the TCP transport: the reliable-delivery invariant —
// every accepted message is delivered to the peer exactly once and in
// order — must hold across loss rates, delays, message sizes and recovery
// configurations (as long as the connection never gives up, i.e. a high
// RTO-failure threshold).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "net/link.hpp"
#include "tcp/endpoint.hpp"

namespace ks::tcp {
namespace {

struct Params {
  double loss;
  Duration delay;
  Bytes size;
  bool aggressive;
};

class TcpReliability : public ::testing::TestWithParam<Params> {};

TEST_P(TcpReliability, ExactlyOnceInOrder) {
  const auto p = GetParam();
  sim::Simulation sim(1234);
  net::DuplexLink link(
      sim, {.bandwidth_bps = 100e6},
      std::make_shared<net::ConstantDelay>(p.delay),
      p.loss > 0 ? std::shared_ptr<net::LossModel>(
                       std::make_shared<net::BernoulliLoss>(p.loss))
                 : std::make_shared<net::NoLoss>(),
      std::make_shared<net::ConstantDelay>(p.delay),
      std::make_shared<net::NoLoss>(), "prop");
  Config config;
  config.max_consecutive_rtos = 1000;  // Never reset: pure reliability test.
  Pair pair(sim, config, link, "prop");
  pair.server.listen();
  pair.client.connect();
  sim.run(seconds(30));
  ASSERT_TRUE(pair.client.established());

  std::vector<int> received;
  pair.server.on_message = [&](std::shared_ptr<const void> payload) {
    received.push_back(*static_cast<const int*>(payload.get()));
  };

  constexpr int kMessages = 40;
  int sent = 0;
  std::function<void()> feeder = [&] {
    while (sent < kMessages &&
           pair.client.send(AppMessage{p.size,
                                       std::make_shared<int>(sent)})) {
      ++sent;
    }
    if (sent < kMessages) sim.after(millis(50), feeder);
  };
  feeder();
  sim.run(seconds(1200));

  ASSERT_EQ(sent, kMessages);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages))
      << "loss=" << p.loss << " delay=" << p.delay << " size=" << p.size;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

std::vector<Params> reliability_grid() {
  std::vector<Params> grid;
  for (double loss : {0.0, 0.05, 0.15, 0.30, 0.45}) {
    for (Duration delay : {micros(200), millis(20), millis(100)}) {
      for (Bytes size : {Bytes{80}, Bytes{1500}, Bytes{6000}}) {
        grid.push_back(Params{loss, delay, size, true});
      }
    }
  }
  // Classic Reno-style recovery must also be reliable (just slower).
  grid.push_back(Params{0.2, millis(10), 500, false});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(LossDelaySizeSweep, TcpReliability,
                         ::testing::ValuesIn(reliability_grid()));

}  // namespace
}  // namespace ks::tcp
