// Unit tests for tcp/: handshake, transfer, loss recovery, flow control,
// resets and reconnection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "tcp/endpoint.hpp"

namespace ks::tcp {
namespace {

struct Rig {
  explicit Rig(double loss = 0.0, Duration delay = millis(1),
               Config config = {})
      : link(sim, {.bandwidth_bps = 100e6},
             std::make_shared<net::ConstantDelay>(delay),
             loss > 0 ? std::shared_ptr<net::LossModel>(
                            std::make_shared<net::BernoulliLoss>(loss))
                      : std::make_shared<net::NoLoss>(),
             std::make_shared<net::ConstantDelay>(delay),
             std::make_shared<net::NoLoss>(), "test"),
        pair(sim, config, link, "conn") {}

  void establish() {
    pair.server.listen();
    pair.client.connect();
    sim.run(seconds(5));
    ASSERT_TRUE(pair.client.established());
    ASSERT_TRUE(pair.server.established());
  }

  sim::Simulation sim;
  net::DuplexLink link;
  Pair pair;
};

AppMessage msg(Bytes size, int tag = 0) {
  return AppMessage{size, std::make_shared<int>(tag)};
}

TEST(Tcp, HandshakeEstablishes) {
  Rig rig;
  rig.establish();
  EXPECT_EQ(rig.pair.client.epoch(), 1u);
  EXPECT_EQ(rig.pair.server.epoch(), 1u);
}

TEST(Tcp, SendBeforeListenEventuallyConnects) {
  // SYNs retry; a late listener still accepts.
  Rig rig;
  rig.pair.client.connect();
  rig.sim.run(millis(100));
  EXPECT_FALSE(rig.pair.client.established());
  rig.pair.server.listen();
  rig.sim.run(seconds(5));
  EXPECT_TRUE(rig.pair.client.established());
}

TEST(Tcp, ConnectFailsAfterMaxSynRetries) {
  Config config;
  config.max_syn_retries = 2;
  Rig rig(/*loss=*/1.0, millis(1), config);
  bool reset = false;
  rig.pair.client.on_reset = [&] { reset = true; };
  rig.pair.server.listen();
  rig.pair.client.connect();
  rig.sim.run(seconds(60));
  EXPECT_TRUE(reset);
  EXPECT_EQ(rig.pair.client.state(), Endpoint::State::kDead);
}

TEST(Tcp, DeliversSingleMessage) {
  Rig rig;
  rig.establish();
  int delivered = 0;
  rig.pair.server.on_message = [&](std::shared_ptr<const void> p) {
    EXPECT_EQ(*static_cast<const int*>(p.get()), 42);
    ++delivered;
  };
  EXPECT_TRUE(rig.pair.client.send(msg(500, 42)));
  rig.sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Tcp, DeliversInOrder) {
  Rig rig;
  rig.establish();
  std::vector<int> tags;
  rig.pair.server.on_message = [&](std::shared_ptr<const void> p) {
    tags.push_back(*static_cast<const int*>(p.get()));
  };
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.pair.client.send(msg(200, i)));
  }
  rig.sim.run();
  ASSERT_EQ(tags.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
}

TEST(Tcp, LargeMessageSpansSegments) {
  Rig rig;
  rig.establish();
  int delivered = 0;
  rig.pair.server.on_message = [&](std::shared_ptr<const void>) {
    ++delivered;
  };
  EXPECT_TRUE(rig.pair.client.send(msg(10000)));
  rig.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(rig.pair.client.stats().data_segments_sent, 7u);
}

TEST(Tcp, BidirectionalTransfer) {
  Rig rig;
  rig.establish();
  int to_server = 0, to_client = 0;
  rig.pair.server.on_message = [&](std::shared_ptr<const void>) {
    ++to_server;
  };
  rig.pair.client.on_message = [&](std::shared_ptr<const void>) {
    ++to_client;
  };
  for (int i = 0; i < 10; ++i) {
    rig.pair.client.send(msg(100));
    rig.pair.server.send(msg(100));
  }
  rig.sim.run();
  EXPECT_EQ(to_server, 10);
  EXPECT_EQ(to_client, 10);
}

TEST(Tcp, SendBufferBackpressure) {
  Config config;
  config.send_buffer = 1000;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  rig.pair.server.set_auto_read(false);  // Stall the reader.
  // Fill the send buffer; at some point send() must refuse.
  int accepted = 0;
  while (rig.pair.client.send(msg(400)) && accepted < 100) ++accepted;
  EXPECT_LT(accepted, 100);
  EXPECT_LT(rig.pair.client.send_buffer_free(), 400);
}

TEST(Tcp, OnWritableFiresAfterAck) {
  Config config;
  config.send_buffer = 1000;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  rig.pair.server.on_message = [](std::shared_ptr<const void>) {};
  while (rig.pair.client.send(msg(400))) {
  }
  bool writable = false;
  rig.pair.client.on_writable = [&] { writable = true; };
  rig.sim.run();
  EXPECT_TRUE(writable);
  EXPECT_TRUE(rig.pair.client.send(msg(400)));
}

TEST(Tcp, RecoversFromModerateLoss) {
  Rig rig(/*loss=*/0.1);
  rig.establish();
  int delivered = 0;
  rig.pair.server.on_message = [&](std::shared_ptr<const void>) {
    ++delivered;
  };
  for (int i = 0; i < 100; ++i) rig.pair.client.send(msg(300, i));
  rig.sim.run(seconds(120));
  EXPECT_EQ(delivered, 100);
  EXPECT_GT(rig.pair.client.stats().retransmissions, 0u);
}

TEST(Tcp, NoDuplicateDeliveryUnderLoss) {
  Rig rig(/*loss=*/0.25);
  rig.establish();
  std::vector<int> tags;
  rig.pair.server.on_message = [&](std::shared_ptr<const void> p) {
    tags.push_back(*static_cast<const int*>(p.get()));
  };
  for (int i = 0; i < 60; ++i) rig.pair.client.send(msg(250, i));
  rig.sim.run(seconds(300));
  ASSERT_EQ(tags.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
}

TEST(Tcp, ResetAfterRepeatedRtoFailure) {
  Config config;
  config.max_consecutive_rtos = 3;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  bool reset = false;
  rig.pair.client.on_reset = [&] { reset = true; };
  // Blackhole everything after establishment.
  rig.link.a_to_b.set_loss_model(std::make_shared<net::BernoulliLoss>(1.0));
  rig.pair.client.send(msg(500));
  rig.sim.run(seconds(120));
  EXPECT_TRUE(reset);
  EXPECT_EQ(rig.pair.client.stats().resets, 1u);
}

TEST(Tcp, ReconnectAfterResetDeliversNewData) {
  Config config;
  config.max_consecutive_rtos = 3;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  int delivered = 0;
  rig.pair.server.on_message = [&](std::shared_ptr<const void>) {
    ++delivered;
  };
  bool reset = false;
  rig.pair.client.on_reset = [&] { reset = true; };
  rig.link.a_to_b.set_loss_model(std::make_shared<net::BernoulliLoss>(1.0));
  rig.pair.client.send(msg(500));
  rig.sim.run(seconds(120));
  ASSERT_TRUE(reset);

  // Heal the network and reincarnate.
  rig.link.a_to_b.set_loss_model(std::make_shared<net::NoLoss>());
  rig.pair.client.connect();
  rig.sim.run_for(seconds(5));
  ASSERT_TRUE(rig.pair.client.established());
  EXPECT_EQ(rig.pair.client.epoch(), 2u);
  rig.pair.client.send(msg(100, 7));
  rig.sim.run();
  EXPECT_EQ(delivered, 1);  // Only the post-reconnect message arrives.
}

TEST(Tcp, ManualReadAccumulatesAndWindowCloses) {
  Config config;
  config.receive_window = 2000;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  rig.pair.server.set_auto_read(false);
  bool readable = false;
  rig.pair.server.on_readable = [&] { readable = true; };
  for (int i = 0; i < 20; ++i) rig.pair.client.send(msg(400, i));
  rig.sim.run_for(seconds(2));
  EXPECT_TRUE(readable);
  EXPECT_GT(rig.pair.server.ready_messages(), 0u);
  // The receiver buffer fills to roughly the advertised window.
  EXPECT_LE(rig.pair.server.unread_bytes(), 2000);
  // The sender cannot have everything acked (flow control bound).
  EXPECT_GT(rig.pair.client.bytes_outstanding(), 0);
}

TEST(Tcp, ReadReopensWindowAndTransferCompletes) {
  Config config;
  config.receive_window = 2000;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  rig.pair.server.set_auto_read(false);
  for (int i = 0; i < 20; ++i) rig.pair.client.send(msg(400, i));
  int read_count = 0;
  // Read one message every 5 ms until all 20 arrive.
  std::function<void()> reader = [&] {
    while (auto m = rig.pair.server.read()) {
      EXPECT_EQ(m->size, 400);
      ++read_count;
    }
    if (read_count < 20) rig.sim.after(millis(5), reader);
  };
  rig.sim.after(millis(5), reader);
  rig.sim.run(seconds(30));
  EXPECT_EQ(read_count, 20);
}

TEST(Tcp, ZeroWindowProbeRecovery) {
  // Even if the window-update ack is lost, persist probes must discover
  // the reopened window.
  Config config;
  config.receive_window = 1000;
  config.persist_interval = millis(50);
  Rig rig(0.0, millis(1), config);
  rig.establish();
  rig.pair.server.set_auto_read(false);
  for (int i = 0; i < 10; ++i) rig.pair.client.send(msg(500, i));
  rig.sim.run_for(seconds(1));
  // Drop the reverse path while reading (the window update is lost).
  rig.link.b_to_a.set_loss_model(std::make_shared<net::BernoulliLoss>(1.0));
  while (rig.pair.server.read()) {
  }
  rig.sim.run_for(seconds(1));
  rig.link.b_to_a.set_loss_model(std::make_shared<net::NoLoss>());
  int read_count = 0;
  std::function<void()> reader = [&] {
    while (rig.pair.server.read()) ++read_count;
    if (read_count < 8) rig.sim.after(millis(20), reader);
  };
  rig.sim.after(millis(20), reader);
  rig.sim.run(seconds(30));
  EXPECT_GE(read_count, 8);
}

TEST(Tcp, StatsAreConsistent) {
  Rig rig(/*loss=*/0.05);
  rig.establish();
  rig.pair.server.on_message = [](std::shared_ptr<const void>) {};
  for (int i = 0; i < 50; ++i) rig.pair.client.send(msg(200, i));
  rig.sim.run(seconds(60));
  const auto& s = rig.pair.client.stats();
  EXPECT_EQ(s.messages_sent, 50u);
  EXPECT_GE(s.segments_sent, s.data_segments_sent);
  EXPECT_GE(s.data_segments_sent, 50u);
  EXPECT_EQ(rig.pair.server.stats().messages_delivered, 50u);
  EXPECT_GT(s.bytes_acked, 0);
}

TEST(Tcp, RefusesSendWhenDead) {
  Rig rig;
  EXPECT_FALSE(rig.pair.client.send(msg(100)));  // Closed, never connected.
}

TEST(Tcp, MessageBoundarySegmentation) {
  Config config;
  config.segment_at_message_boundaries = true;
  Rig rig(0.0, millis(1), config);
  rig.establish();
  rig.pair.server.on_message = [](std::shared_ptr<const void>) {};
  for (int i = 0; i < 10; ++i) rig.pair.client.send(msg(100, i));
  rig.sim.run();
  // Each small message must ride its own segment.
  EXPECT_GE(rig.pair.client.stats().data_segments_sent, 10u);
}

}  // namespace
}  // namespace ks::tcp
