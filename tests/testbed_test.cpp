// Testbed tests: scenario features, experiment invariants, determinism,
// the Fig. 3 collector, and workload presets.
#include <gtest/gtest.h>

#include "testbed/calibration.hpp"
#include "testbed/collector.hpp"
#include "testbed/experiment.hpp"
#include "testbed/workloads.hpp"

namespace ks::testbed {
namespace {

TEST(Scenario, NormalFeatureVector) {
  Scenario sc;
  sc.timeliness = seconds(2);
  sc.message_timeout = millis(1500);
  sc.poll_interval = millis(20);
  sc.semantics = kafka::DeliverySemantics::kAtMostOnce;
  sc.batch_size = 3;
  const auto f = sc.normal_features();
  ASSERT_EQ(f.size(), Scenario::normal_feature_names().size());
  EXPECT_DOUBLE_EQ(f[0], 2000.0);
  EXPECT_DOUBLE_EQ(f[1], 1500.0);
  EXPECT_DOUBLE_EQ(f[2], 20.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  EXPECT_DOUBLE_EQ(f[4], 3.0);
}

TEST(Scenario, AbnormalFeatureVector) {
  Scenario sc;
  sc.message_size = 250;
  sc.network_delay = millis(100);
  sc.packet_loss = 0.19;
  sc.semantics = kafka::DeliverySemantics::kAtLeastOnce;
  sc.batch_size = 5;
  const auto f = sc.abnormal_features();
  ASSERT_EQ(f.size(), Scenario::abnormal_feature_names().size());
  EXPECT_DOUBLE_EQ(f[0], 250.0);
  EXPECT_DOUBLE_EQ(f[1], 100.0);
  EXPECT_DOUBLE_EQ(f[2], 0.19);
  EXPECT_DOUBLE_EQ(f[3], 1.0);
  EXPECT_DOUBLE_EQ(f[4], 5.0);
}

TEST(Calibration, FullLoadIntervalGrowsWithSize) {
  EXPECT_GT(full_load_interval(1000), full_load_interval(100));
  EXPECT_EQ(full_load_interval(0), kSerializeBase);
}

Scenario small_scenario() {
  Scenario sc;
  sc.num_messages = 1500;
  sc.broker_regimes = false;
  sc.seed = 99;
  return sc;
}

TEST(Experiment, HealthyNetworkLosesNothing) {
  const auto r = run_experiment(small_scenario());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.census.lost, 0u);
  EXPECT_EQ(r.census.duplicated, 0u);
  EXPECT_DOUBLE_EQ(r.p_loss, 0.0);
  EXPECT_DOUBLE_EQ(r.p_duplicate, 0.0);
}

TEST(Experiment, CensusPartsSumToTotal) {
  auto sc = small_scenario();
  sc.packet_loss = 0.25;
  sc.message_timeout = millis(1500);
  const auto r = run_experiment(sc);
  EXPECT_EQ(r.census.delivered + r.census.duplicated + r.census.lost,
            sc.num_messages);
  std::uint64_t case_sum = 0;
  for (auto c : r.cases.cases) case_sum += c;
  EXPECT_EQ(case_sum, sc.num_messages);
}

TEST(Experiment, DeterministicGivenSeed) {
  auto sc = small_scenario();
  sc.packet_loss = 0.15;
  sc.broker_regimes = true;
  const auto a = run_experiment(sc);
  const auto b = run_experiment(sc);
  EXPECT_EQ(a.census.delivered, b.census.delivered);
  EXPECT_EQ(a.census.duplicated, b.census.duplicated);
  EXPECT_EQ(a.census.lost, b.census.lost);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
}

TEST(Experiment, SeedChangesRun) {
  auto sc = small_scenario();
  sc.packet_loss = 0.15;
  sc.broker_regimes = true;
  const auto a = run_experiment(sc);
  sc.seed = 100;
  const auto b = run_experiment(sc);
  EXPECT_NE(a.events, b.events);
}

TEST(Experiment, LossHurtsReliability) {
  auto sc = small_scenario();
  sc.message_timeout = millis(1500);
  sc.source_interval = micros(4000);
  sc.num_messages = 4000;
  const auto clean = run_experiment(sc);
  sc.packet_loss = 0.35;
  const auto lossy = run_experiment(sc);
  EXPECT_GT(lossy.p_loss, clean.p_loss + 0.05);
}

TEST(Experiment, ExactlyOnceNeverDuplicates) {
  auto sc = small_scenario();
  sc.semantics = kafka::DeliverySemantics::kExactlyOnce;
  sc.packet_loss = 0.3;
  sc.message_timeout = millis(2000);
  sc.request_timeout = millis(400);
  sc.num_messages = 2000;
  const auto r = run_experiment(sc);
  EXPECT_EQ(r.census.duplicated, 0u);
}

TEST(Experiment, AtMostOnceNeverDuplicates) {
  auto sc = small_scenario();
  sc.semantics = kafka::DeliverySemantics::kAtMostOnce;
  sc.packet_loss = 0.3;
  sc.message_timeout = millis(1500);
  const auto r = run_experiment(sc);
  EXPECT_EQ(r.census.duplicated, 0u);
}

TEST(Experiment, KpiInputsPopulated) {
  const auto r = run_experiment(small_scenario());
  EXPECT_GT(r.service_rate_mu, 0.0);
  EXPECT_GT(r.bandwidth_utilization_phi, 0.0);
  EXPECT_LE(r.bandwidth_utilization_phi, 1.0);
  EXPECT_GT(r.delivered_throughput, 0.0);
  EXPECT_GT(r.mean_latency_ms, 0.0);
}

TEST(Experiment, OnDemandModeHasNoOverruns) {
  auto sc = small_scenario();
  sc.source_mode = SourceMode::kOnDemand;
  const auto r = run_experiment(sc);
  EXPECT_EQ(r.source_overruns, 0u);
  EXPECT_EQ(r.census.lost, 0u);
}

TEST(Collector, GridSizesMatchConfig) {
  auto config = CollectorConfig::quick();
  Collector collector(config);
  const auto reps = static_cast<std::size_t>(config.repeats);
  EXPECT_EQ(collector.normal_grid_size(),
            config.timeouts.size() * config.polls.size() *
                config.timeliness.size() * config.semantics.size() *
                config.batches.size() * reps);
  EXPECT_EQ(collector.abnormal_grid_size(),
            config.sizes.size() * config.delays.size() *
                config.losses.size() * config.batches.size() *
                config.semantics.size() * reps);
}

TEST(Collector, TinyGridProducesDatasets) {
  CollectorConfig config;
  config.num_messages = 400;
  config.timeouts = {millis(500), millis(1500)};
  config.polls = {0};
  config.timeliness = {seconds(1)};
  config.sizes = {100};
  config.delays = {millis(20)};
  config.losses = {0.0, 0.2};
  config.batches = {1};
  config.semantics = {kafka::DeliverySemantics::kAtLeastOnce};
  Collector collector(config);

  std::size_t progress = 0;
  collector.on_progress = [&](std::size_t done, std::size_t total) {
    progress = done;
    EXPECT_LE(done, total);
  };
  auto normal = collector.collect_normal();
  EXPECT_EQ(normal.size(), 2u);
  EXPECT_EQ(normal.x.cols(), 5u);
  EXPECT_EQ(normal.y.cols(), 2u);
  EXPECT_EQ(progress, 2u);

  auto abnormal = collector.collect_abnormal();
  EXPECT_EQ(abnormal.size(), 2u);
  EXPECT_EQ(abnormal.x.cols(), 5u);
  for (std::size_t r = 0; r < abnormal.size(); ++r) {
    EXPECT_GE(abnormal.y(r, 0), 0.0);
    EXPECT_LE(abnormal.y(r, 0), 1.0);
  }
}

TEST(Workloads, PresetsAreDistinctAndWeighted) {
  const auto sm = social_media();
  const auto web = web_access_records();
  const auto game = game_traffic();
  for (const auto& w : {sm, web, game}) {
    double sum = 0.0;
    for (double v : w.weights) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << w.name;
    EXPECT_GT(w.message_size, 0);
    EXPECT_GT(w.emit_interval, 0);
  }
  EXPECT_LT(game.message_size, web.message_size);
  EXPECT_LT(web.message_size, sm.message_size);
  EXPECT_GT(web.weights[2], sm.weights[2]);  // Web logs value completeness.
  EXPECT_LT(game.timeliness, web.timeliness);
}

}  // namespace
}  // namespace ks::testbed
