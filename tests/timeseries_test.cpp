// Unit tests for the deterministic sim-time time-series engine: window
// aggregation, ring rollover, empty-window gaps, out-of-order drops,
// latency-sketch quantile bounds, and byte-identical serialization of the
// health section across replays.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "testbed/experiment.hpp"

namespace ks::obs {
namespace {

TEST(TimeSeries, AggregatesPerWindowCountMinMaxSum) {
  TimeSeries s("lag", /*interval=*/100, /*capacity=*/8);
  s.observe(0, 5.0);
  s.observe(10, 1.0);
  s.observe(99, 3.0);
  s.observe(100, 7.0);  // Next window.

  const auto w = s.windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].index, 0);
  EXPECT_EQ(w[0].count, 3u);
  EXPECT_DOUBLE_EQ(w[0].min, 1.0);
  EXPECT_DOUBLE_EQ(w[0].max, 5.0);
  EXPECT_DOUBLE_EQ(w[0].sum, 9.0);
  EXPECT_EQ(w[1].index, 1);
  EXPECT_EQ(w[1].count, 1u);
  EXPECT_DOUBLE_EQ(s.last_mean(), 7.0);
  EXPECT_EQ(s.dropped(), 0u);
}

TEST(TimeSeries, RingRolloverEvictsOldestKeepsOrder) {
  TimeSeries s("lag", 10, /*capacity=*/4);
  for (int i = 0; i < 7; ++i) {
    s.observe(static_cast<TimePoint>(i) * 10, static_cast<double>(i));
  }
  const auto w = s.windows();
  ASSERT_EQ(w.size(), 4u);
  // Oldest three evicted; survivors oldest-first with contiguous indices.
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i].index, static_cast<std::int64_t>(i) + 3);
    EXPECT_DOUBLE_EQ(w[i].sum, static_cast<double>(i + 3));
  }
  EXPECT_EQ(s.dropped(), 3u);
}

TEST(TimeSeries, SparseProbesLeaveIndexGapsNotStorage) {
  TimeSeries s("lag", 10, 8);
  s.observe(5, 1.0);     // Window 0.
  s.observe(95, 2.0);    // Window 9 — windows 1..8 never probed.
  s.observe(105, 3.0);   // Window 10.
  const auto w = s.windows();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].index, 0);
  EXPECT_EQ(w[1].index, 9);
  EXPECT_EQ(w[2].index, 10);
  EXPECT_EQ(s.dropped(), 0u);
}

TEST(TimeSeries, OutOfOrderObservationIsDroppedAndCounted) {
  TimeSeries s("lag", 10, 8);
  s.observe(50, 1.0);
  s.observe(20, 2.0);  // Window 2 < current window 5: dropped.
  const auto w = s.windows();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].index, 5);
  EXPECT_EQ(s.dropped(), 1u);
}

TEST(LatencySketch, QuantileAnswersCarryBucketUpperBounds) {
  LatencySketch sk;
  EXPECT_EQ(sk.quantile_upper_bound(0.5), 0);  // Empty.

  // 90 observations in (100, 200], 10 in (2000, 5000].
  for (int i = 0; i < 90; ++i) sk.observe(150);
  for (int i = 0; i < 10; ++i) sk.observe(3000);
  EXPECT_EQ(sk.count(), 100u);
  EXPECT_EQ(sk.quantile_upper_bound(0.5), 200);
  EXPECT_EQ(sk.quantile_upper_bound(0.9), 200);
  EXPECT_EQ(sk.quantile_upper_bound(0.95), 5000);
  EXPECT_EQ(sk.quantile_upper_bound(1.0), 5000);

  // The true quantile lies within the returned bucket: p50 of the mixed
  // population is 150, inside (100, 200].
  EXPECT_LE(150, sk.quantile_upper_bound(0.5));
}

TEST(LatencySketch, OverflowBucketReportsSaturatingSentinel) {
  LatencySketch sk;
  sk.observe(99999999);  // Beyond every finite bound.
  EXPECT_EQ(sk.buckets().back(), 1u);
  // A quantile in the +inf bucket has no finite upper bound: the sketch
  // must say so rather than silently capping at the largest finite bound.
  EXPECT_EQ(sk.quantile_upper_bound(0.5), kLatencySketchOverflowUs);
  EXPECT_GT(kLatencySketchOverflowUs, kLatencySketchBoundsUs.back());

  // With enough fast samples in front, finite quantiles stay finite while
  // the tail quantile still reports overflow.
  for (int i = 0; i < 98; ++i) sk.observe(150);
  sk.observe(99999999);
  EXPECT_EQ(sk.quantile_upper_bound(0.5), 200);
  EXPECT_EQ(sk.quantile_upper_bound(0.99), kLatencySketchOverflowUs);
}

TEST(LatencySketch, BoundaryValuesLandInTheirUpperBucket) {
  LatencySketch sk;
  sk.observe(100);  // Exactly the first bound: bucket 0 (<= 100).
  sk.observe(101);  // First value of bucket 1.
  EXPECT_EQ(sk.buckets()[0], 1u);
  EXPECT_EQ(sk.buckets()[1], 1u);
  sk.clear();
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.buckets()[0], 0u);
}

// Replay determinism of the serialized health section: two runs of the
// same seed must produce byte-identical canonical JSON, and the health
// series must actually carry data (guards against a silently-empty
// section passing the comparison).
TEST(TimeSeries, HealthSectionSerializesByteIdenticallyAcrossReplays) {
  testbed::Scenario sc;
  sc.num_messages = 300;
  sc.partitions = 2;
  sc.group_size = 2;
  sc.seed = 21;
  const auto a = testbed::run_experiment(sc);
  const auto b = testbed::run_experiment(sc);
  ASSERT_GT(a.health_ticks, 0u);
  ASSERT_FALSE(a.report.health.series.empty());
  EXPECT_EQ(a.report.canonical_json(), b.report.canonical_json());
}

}  // namespace
}  // namespace ks::obs
