// End-to-end smoke tests for the command-line tools: every malformed
// invocation (missing flag values, unknown options, unreadable artifact
// paths) must exit nonzero with a diagnostic instead of crashing, and the
// cheap happy paths must exit zero. The binaries are launched from the
// build directory (KS_TOOLS_DIR, injected by CMake), so these tests also
// run under the asan/ubsan presets where a latent argv over-read or
// uninitialized option would trip the sanitizer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

/// Run `tool args` with stdout/stderr silenced; return the exit status,
/// or -1 when the child did not exit normally (signal/crash).
int run_tool(const std::string& tool, const std::string& args) {
  const std::string cmd = std::string(KS_TOOLS_DIR) + "/" + tool + " " +
                          args + " >/dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
#ifdef _WIN32
  return raw;
#else
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
#endif
}

TEST(ToolsCli, ExplainRejectsMalformedInvocations) {
  EXPECT_EQ(run_tool("ks_explain", ""), 2);            // No mode selected.
  EXPECT_EQ(run_tool("ks_explain", "--seed"), 2);      // Missing value.
  EXPECT_EQ(run_tool("ks_explain", "--key"), 2);       // Missing value.
  EXPECT_EQ(run_tool("ks_explain", "--profile"), 2);   // Missing value.
  EXPECT_EQ(run_tool("ks_explain", "--seed 0x1 --profile bogus"), 2);
  EXPECT_EQ(run_tool("ks_explain", "--bogus"), 2);     // Unknown option.
  EXPECT_EQ(run_tool("ks_explain", "--seed 0x1 extra.json"), 2);  // Both modes.
  EXPECT_EQ(run_tool("ks_explain", "/nonexistent/report.json"), 1);
}

TEST(ToolsCli, HealthRejectsMalformedInvocations) {
  EXPECT_EQ(run_tool("ks_health", ""), 2);
  EXPECT_EQ(run_tool("ks_health", "--seed"), 2);
  EXPECT_EQ(run_tool("ks_health", "--profile"), 2);
  EXPECT_EQ(run_tool("ks_health", "--seed 0x1 --profile bogus"), 2);
  EXPECT_EQ(run_tool("ks_health", "--bogus"), 2);
  EXPECT_EQ(run_tool("ks_health", "/nonexistent/report.json"), 1);
}

TEST(ToolsCli, BenchRejectsMalformedInvocations) {
  EXPECT_EQ(run_tool("ks_bench", "--bogus"), 2);        // Unknown option.
  EXPECT_EQ(run_tool("ks_bench", "--repeat"), 2);       // Missing value.
  EXPECT_EQ(run_tool("ks_bench", "--repeat zero"), 2);  // Non-numeric.
  EXPECT_EQ(run_tool("ks_bench", "--repeat 0"), 2);     // Out of range.
  EXPECT_EQ(run_tool("ks_bench", "--warmup -1"), 2);
  EXPECT_EQ(run_tool("ks_bench", "no_such_bench_filter"), 2);
}

TEST(ToolsCli, BenchDiffRejectsMalformedInvocations) {
  EXPECT_EQ(run_tool("ks_bench_diff", ""), 2);        // Needs two paths.
  EXPECT_EQ(run_tool("ks_bench_diff", "one"), 2);     // Needs two paths.
  EXPECT_EQ(run_tool("ks_bench_diff", "a b --rel"), 2);  // Missing value.
  EXPECT_EQ(run_tool("ks_bench_diff", "--rel abc a b"), 2);   // Non-numeric.
  EXPECT_EQ(run_tool("ks_bench_diff", "--sigma 3x a b"), 2);  // Trailing junk.
  EXPECT_EQ(run_tool("ks_bench_diff", "--det-tol"), 2);
  EXPECT_EQ(run_tool("ks_bench_diff", "--bogus a b"), 2);
  EXPECT_EQ(run_tool("ks_bench_diff", "/nonexistent/a /nonexistent/b"), 2);
}

TEST(ToolsCli, CheapHappyPathsExitZero) {
  EXPECT_EQ(run_tool("ks_bench", "--list"), 0);
  // One tiny seed replay through each narration tool; under asan/ubsan
  // this sweeps the whole scenario -> report -> render pipeline.
  EXPECT_EQ(run_tool("ks_explain", "--seed 0x5EEDFACE"), 0);
  EXPECT_EQ(run_tool("ks_health", "--seed 0x5EEDFACE"), 0);
}

}  // namespace
