// Tier-1 trend tests: the paper's headline qualitative curves, checked
// at reduced scale (the bench/ suite reproduces the full figures; the
// thresholds here are calibrated to this substrate).
//
//  - Fig. 6: at full load, P_l falls monotonically as the polling
//    interval delta grows, reaching ~zero by delta=90ms.
//  - Fig. 7: under heavy packet loss (L=13%), batching rescues
//    at-least-once reliability — B: 1 -> 2 collapses P_l.
//
// Runs are deterministic (fixed seed set, same common-random-numbers
// scheme as bench_core's run_averaged), so the assertions cannot flake;
// the margins only guard against behavioral drift of the simulator.
#include <gtest/gtest.h>

#include <vector>

#include "testbed/experiment.hpp"

namespace ks::testbed {
namespace {

// Average P_l over a fixed seed set shared by every sweep point, which
// removes broker-regime noise from the cross-point comparison.
double mean_p_loss(Scenario sc, int repeats) {
  double sum = 0.0;
  for (int i = 0; i < repeats; ++i) {
    sc.seed = 90001 + 7919 * static_cast<std::uint64_t>(i);
    sum += run_experiment(sc).p_loss;
  }
  return sum / repeats;
}

TEST(Trend, Fig6LossDecreasesMonotonicallyInPollingInterval) {
  const std::vector<Duration> deltas = {0, millis(5), millis(20), millis(90)};
  for (const auto semantics : {kafka::DeliverySemantics::kAtMostOnce,
                               kafka::DeliverySemantics::kAtLeastOnce}) {
    SCOPED_TRACE(kafka::to_string(semantics));
    std::vector<double> p_loss;
    for (const auto delta : deltas) {
      Scenario sc;
      sc.message_size = 200;
      sc.message_timeout = millis(500);
      sc.poll_interval = delta;
      sc.source_mode = SourceMode::kOnDemand;
      sc.num_messages = 12000;
      sc.semantics = semantics;
      sc.sample_interval = 0;
      p_loss.push_back(mean_p_loss(sc, 3));
    }
    // Monotone within a small noise tolerance...
    for (std::size_t i = 1; i < p_loss.size(); ++i) {
      EXPECT_LE(p_loss[i], p_loss[i - 1] + 0.01)
          << "P_l rose from delta=" << to_millis(deltas[i - 1]) << "ms ("
          << p_loss[i - 1] << ") to delta=" << to_millis(deltas[i]) << "ms ("
          << p_loss[i] << ")";
    }
    // ...with the paper's qualitative endpoints: substantial loss at full
    // load (strongest without acks), near-zero by delta=90ms.
    const double full_load_floor =
        semantics == kafka::DeliverySemantics::kAtMostOnce ? 0.08 : 0.02;
    EXPECT_GT(p_loss.front(), full_load_floor)
        << "expected visible loss at delta=0";
    EXPECT_LT(p_loss.back(), 0.005) << "expected ~no loss at delta=90ms";
    EXPECT_GT(p_loss.front(), p_loss.back() + 0.01);
  }
}

TEST(Trend, Fig7BatchingRescuesReliabilityUnderLoss) {
  auto run_with_batch = [](int batch_size) {
    Scenario sc;
    sc.message_size = 100;
    sc.packet_loss = 0.13;
    sc.source_interval = micros(4000);
    sc.message_timeout = millis(2000);
    sc.batch_size = batch_size;
    sc.num_messages = 12000;
    sc.semantics = kafka::DeliverySemantics::kAtLeastOnce;
    sc.sample_interval = 0;
    return mean_p_loss(sc, 3);
  };
  const double b1 = run_with_batch(1);
  const double b2 = run_with_batch(2);
  // Fig. 7 at L=13%: B=1 keeps losing messages (every record pays the
  // per-request overhead, so the retry budget drains under loss) while
  // B=2 already recovers most of them.
  EXPECT_GT(b1, 0.06) << "B=1 under L=13% should show sustained loss";
  EXPECT_LT(b2, 0.05) << "B=2 under L=13% should recover reliability";
  EXPECT_GT(b1, b2 + 0.03) << "batching should collapse P_l sharply";
}

}  // namespace
}  // namespace ks::testbed
